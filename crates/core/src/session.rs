//! The canonical front door to the enumeration stack: a fluent
//! builder/session API with budgets, per-run statistics, and typed errors.
//!
//! Every algorithm of the crate — `RankedTriang`, its parallel variant,
//! width-bounded `MinTriangB` preprocessing, diversity filtering, and the
//! proper-tree-decomposition expansion — is reachable through one composable
//! entry point:
//!
//! ```
//! use mtr_core::session::{Enumerate, StopReason};
//! use mtr_core::cost::FillIn;
//! use mtr_graph::paper_example_graph;
//!
//! let g = paper_example_graph();
//! let run = Enumerate::on(&g).cost(&FillIn).run()?;
//! assert_eq!(run.results.len(), 2);
//! assert_eq!(run.stop_reason, StopReason::Exhausted);
//! assert_eq!(run.stats.duplicates_skipped, 0);
//! # Ok::<(), mtr_core::session::EnumerationError>(())
//! ```
//!
//! Three cross-cutting capabilities distinguish a session from driving the
//! enumerators by hand:
//!
//! * **budgets** — [`Enumerate::max_results`], [`Enumerate::deadline`] and
//!   [`Enumerate::node_budget`] stop the enumeration early; the session
//!   reports *why* it stopped through a typed [`StopReason`], and the
//!   results are always a prefix of the unbudgeted ranked stream;
//! * **statistics** — every run returns [`EnumerationStats`]: preprocessing
//!   time, per-result delays, priority-queue depth, explored Lawler–Murty
//!   nodes, duplicates skipped;
//! * **typed errors** — misconfiguration and bad inputs surface as
//!   [`EnumerationError`] values instead of panics.
//!
//! The pre-existing constructors (`RankedEnumerator::new`,
//! `ParallelRankedEnumerator::new`, `ProperDecompositionEnumerator::new`,
//! `Diversified::new`) remain available as the low-level engine layer the
//! session drives; new code should prefer [`Enumerate`].

use crate::cancel::CancelFlag;
use crate::cost::{named_cost, BagCost, CostValue, DynBagCost, Width};
use crate::diverse::{DiversityFilter, SimilarityMeasure};
use crate::mintriang::Preprocessed;
use crate::parallel::ParallelRankedEnumerator;
use crate::pool::{self, resolve_threads};
use crate::properdec::RankedDecomposition;
use crate::ranked::{RankedEnumerator, RankedTriangulation};
use crate::symmetry::{OrbitContext, SymmetryPolicy};
use mtr_chordal::{
    clique_trees_from_cliques, lb_triang_min_degree, maximal_cliques_chordal, mcs_m,
};
use mtr_graph::io::ParseError;
use mtr_graph::Graph;
use mtr_pmc::enumerate::{
    potential_maximal_cliques, potential_maximal_cliques_bounded,
    potential_maximal_cliques_bounded_with_deadline, potential_maximal_cliques_with_deadline,
};
use std::ops::ControlFlow;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Session metric handles, resolved once per process. All recording is
/// gated inside `mtr-obs` on the global level — with observability off
/// each hook is one relaxed atomic load.
struct SessionMetrics {
    sessions: mtr_obs::Counter,
    results: mtr_obs::Counter,
    orbit_replays: mtr_obs::Counter,
    nodes_pruned: mtr_obs::Counter,
    preprocess_ns: mtr_obs::Histogram,
    advance_ns: mtr_obs::Histogram,
    delay_ns: mtr_obs::Histogram,
}

fn session_metrics() -> &'static SessionMetrics {
    static METRICS: std::sync::OnceLock<SessionMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| SessionMetrics {
        sessions: mtr_obs::counter("core.session.sessions"),
        results: mtr_obs::counter("core.session.results"),
        orbit_replays: mtr_obs::counter("core.session.orbit_replays"),
        nodes_pruned: mtr_obs::counter("core.session.nodes_pruned"),
        preprocess_ns: mtr_obs::histogram("core.session.preprocess_ns"),
        advance_ns: mtr_obs::histogram("core.session.advance_ns"),
        delay_ns: mtr_obs::histogram("core.session.delay_ns"),
    })
}

/// Nanoseconds of `d`, saturating (u64 holds ~584 years).
fn saturating_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

// ---------------------------------------------------------------------------
// Cache policy
// ---------------------------------------------------------------------------

/// Where (and whether) a reduction-enabled session caches per-atom ranked
/// prefixes — see [`Enumerate::cache`].
///
/// The policy is plain configuration: the store it selects lives in the
/// `mtr-cache` crate and is wired up by the reduction layer (`mtr-reduce`).
/// Sessions that run the direct engine (reduction off, non-factorizing
/// cost, single atom, `Preprocessed` source) carry the policy but have no
/// atoms to cache, so it is inert there.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum CachePolicy {
    /// No caching, no canonicalization: per-atom streams are built from
    /// scratch exactly as before. The default.
    #[default]
    Off,
    /// Cache atom prefixes in the process-wide in-memory store (byte
    /// budget in bytes, LRU beyond it). Enables intra-run dedup of
    /// isomorphic atoms and cross-session reuse within the process. The
    /// store is shared by every in-memory session of the process, and its
    /// budget is the largest any session has requested (it grows, never
    /// shrinks).
    InMemory(usize),
    /// Like [`CachePolicy::InMemory`], additionally persisting published
    /// prefixes into the directory (versioned binary files) and falling
    /// back to it on memory misses — cross-process/cross-run reuse.
    Dir(PathBuf),
}

impl CachePolicy {
    /// The in-memory policy with the default byte budget (64 MiB).
    pub fn in_memory() -> Self {
        CachePolicy::InMemory(64 << 20)
    }

    /// `true` unless the policy is [`CachePolicy::Off`].
    pub fn is_enabled(&self) -> bool {
        !matches!(self, CachePolicy::Off)
    }
}

// ---------------------------------------------------------------------------
// Pruning policy
// ---------------------------------------------------------------------------

/// Whether a session prunes Lawler–Murty partitions against an incumbent
/// cost bound — see [`Enumerate::pruning`].
///
/// Pruning is *exact*: a partition whose admissible lower bound exceeds the
/// incumbent is deferred, not discarded, and is re-optimized lazily if (and
/// only if) the ranked order ever reaches it. The emitted result sequence —
/// costs, triangulations, and tie order — is identical with pruning on or
/// off; only the number of constrained `MinTriang` re-optimizations paid
/// before each emission changes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PruningPolicy {
    /// Prune against an incumbent: seeded from a cheap heuristic minimal
    /// triangulation (MCS-M and min-degree `LB-Triang`, whichever is
    /// cheaper under the session cost), then tightened to the cost of the
    /// most recently emitted result. The default.
    #[default]
    Incumbent,
    /// Never defer: every partition is re-optimized eagerly, exactly as in
    /// previous releases (`mtr --no-prune`).
    Off,
}

impl PruningPolicy {
    /// `true` unless the policy is [`PruningPolicy::Off`].
    pub fn is_enabled(&self) -> bool {
        !matches!(self, PruningPolicy::Off)
    }
}

/// The incumbent seed for [`PruningPolicy::Incumbent`]: the cheaper of two
/// heuristic minimal triangulations (MCS-M and min-degree `LB-Triang`)
/// under `cost`, skipping candidates a [`Enumerate::width_bound`] session
/// could never emit. `None` when no candidate qualifies — pruning then
/// starts from the first emitted result instead.
///
/// Public so alternative engines (the factorized per-atom enumerator of
/// `mtr-reduce`) can seed their own incumbents — globally and per atom —
/// with the same heuristic the direct session uses.
pub fn heuristic_incumbent<K: BagCost + ?Sized>(
    g: &Graph,
    cost: &K,
    width_bound: Option<usize>,
) -> Option<CostValue> {
    if g.n() == 0 {
        return None;
    }
    let scope = g.vertex_set();
    let candidates = [mcs_m(g).triangulation, lb_triang_min_degree(g)];
    let mut best: Option<CostValue> = None;
    for h in &candidates {
        let Some(bags) = maximal_cliques_chordal(h) else {
            continue;
        };
        let width = bags.iter().map(|b| b.len()).max().unwrap_or(1) - 1;
        if width_bound.is_some_and(|b| width > b) {
            continue;
        }
        let value = cost.cost_of_bags(g, &scope, &bags);
        if value.is_finite() && best.is_none_or(|b| value < b) {
            best = Some(value);
        }
    }
    best
}

// ---------------------------------------------------------------------------
// Typed errors
// ---------------------------------------------------------------------------

/// A typed error for every way a session (or a caller feeding one, like the
/// `mtr` CLI) can be misconfigured or handed bad input.
#[derive(Debug, Clone, PartialEq)]
pub enum EnumerationError {
    /// The input graph file could not be parsed; the wrapped
    /// [`ParseError`] carries the offending line number.
    Parse(ParseError),
    /// The input graph file could not be read at all.
    Io {
        /// The path that failed to load.
        path: String,
        /// The operating-system error message.
        message: String,
    },
    /// [`Enumerate::cost_named`] was given a name no shipped cost answers
    /// to.
    UnknownCost(String),
    /// The diversity threshold passed to [`Enumerate::diverse`] is outside
    /// `[0, 1]`.
    InvalidDiversityThreshold(f64),
    /// [`Enumerate::width_bound`] was combined with
    /// [`Enumerate::with`]: the width bound is a *preprocessing* restriction,
    /// so it must be chosen when the [`Preprocessed`] value is built (or by
    /// starting from the graph with [`Enumerate::on`]).
    WidthBoundOnPreprocessed,
    /// A worker-pool task died mid-session — a panicking cost function or
    /// an injected `pool.task` fault. The unwind was contained on its
    /// worker (the pool, sibling sessions, and the process all survive);
    /// the session that owned the batch fails with the panic's message.
    WorkerPanicked(String),
}

impl std::fmt::Display for EnumerationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnumerationError::Parse(e) => write!(f, "graph parse error: {e}"),
            EnumerationError::Io { path, message } => {
                write!(f, "cannot read {path}: {message}")
            }
            EnumerationError::UnknownCost(name) => write!(
                f,
                "unknown cost {name:?} (expected width|fill|width-fill|expbags)"
            ),
            EnumerationError::InvalidDiversityThreshold(t) => {
                write!(f, "diversity threshold {t} is outside [0, 1]")
            }
            EnumerationError::WorkerPanicked(message) => {
                write!(f, "a worker task panicked: {message}")
            }
            EnumerationError::WidthBoundOnPreprocessed => write!(
                f,
                "a width bound cannot be applied to an existing Preprocessed value; \
                 build it with Preprocessed::new_bounded or start from the graph \
                 with Enumerate::on"
            ),
        }
    }
}

impl std::error::Error for EnumerationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EnumerationError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for EnumerationError {
    fn from(e: ParseError) -> Self {
        EnumerationError::Parse(e)
    }
}

// ---------------------------------------------------------------------------
// Stop reasons and statistics
// ---------------------------------------------------------------------------

/// Why a session stopped producing results.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The graph has no further minimal triangulations (or proper tree
    /// decompositions) under the session's restrictions.
    Exhausted,
    /// The [`Enumerate::max_results`] budget was reached.
    MaxResults,
    /// The [`Enumerate::deadline`] wall-clock budget expired (possibly
    /// already during preprocessing — see
    /// [`EnumerationStats::preprocessing_complete`]).
    DeadlineExceeded,
    /// The [`Enumerate::node_budget`] on explored Lawler–Murty partitions
    /// was exhausted.
    NodeBudgetExhausted,
    /// The [`Enumerate::drive`] callback requested an early stop.
    Stopped,
    /// The session's [`CancelFlag`] was raised (see
    /// [`Enumerate::cancel_flag`]) — typically by a service handler whose
    /// client disconnected. The results emitted before the flag was
    /// observed are a valid ranked prefix.
    Cancelled,
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            StopReason::Exhausted => "exhausted",
            StopReason::MaxResults => "max-results",
            StopReason::DeadlineExceeded => "deadline-exceeded",
            StopReason::NodeBudgetExhausted => "node-budget-exhausted",
            StopReason::Stopped => "stopped",
            StopReason::Cancelled => "cancelled",
        })
    }
}

/// Aggregate and per-result measurements of one session run.
#[derive(Clone, Debug, Default)]
pub struct EnumerationStats {
    /// Name of the bag cost the session ranked by.
    pub cost: String,
    /// Wall-clock time spent on preprocessing (zero when the session reused
    /// an existing [`Preprocessed`]).
    pub preprocessing: Duration,
    /// Whether preprocessing ran to completion. `false` only when a
    /// [`Enumerate::deadline`] expired during the initialization itself, in
    /// which case the run carries zero results.
    pub preprocessing_complete: bool,
    /// Total wall-clock time of the run, preprocessing included.
    pub total: Duration,
    /// Number of emitted results. For [`Enumerate::run_decompositions`]
    /// this counts the underlying *triangulations*, not the clique trees
    /// expanded from them.
    pub results: usize,
    /// Per-result delay: `delays[i]` is the wall-clock time between result
    /// `i-1` and result `i` (for `i = 0`, since the end of preprocessing).
    pub delays: Vec<Duration>,
    /// Largest observed depth of the Lawler–Murty priority queue.
    pub max_queue_depth: usize,
    /// Queue depth when the session stopped.
    pub final_queue_depth: usize,
    /// Explored Lawler–Murty partitions (constrained `MinTriang` calls).
    pub nodes_explored: usize,
    /// Duplicate results skipped by the engine (expected to be zero).
    pub duplicates_skipped: usize,
    /// Results rejected by the [`Enumerate::diverse`] filter.
    pub diversity_rejected: usize,
    /// Minimal separators found during preprocessing.
    pub minimal_separators: usize,
    /// Potential maximal cliques found during preprocessing.
    pub pmcs: usize,
    /// Full blocks of the Bouchitté–Todinca dynamic program.
    pub full_blocks: usize,
    /// Atoms found by a reduction-enabled session (`mtr-reduce`): `0` when
    /// no decomposition was attempted (reduction off, non-factorizing cost,
    /// or a `Preprocessed` source); `1` when the decomposition found a
    /// single atom — the direct engine ran, there was nothing to factorize;
    /// `≥ 2` when the factorized per-atom engine actually ran.
    pub atoms: usize,
    /// Worker threads the run actually executed on: `1` for the sequential
    /// engine, the resolved pool width otherwise (`.threads(0)` resolves to
    /// the detected hardware parallelism). This reports what really ran —
    /// `.threads(t)` is never silently dropped, including under reduction.
    pub effective_threads: usize,
    /// Pool tasks executed per worker (index 0 is the session thread
    /// itself) on the *enumeration* pool — the short-lived preprocessing
    /// pool is not included. Empty for sequential runs.
    pub worker_tasks: Vec<usize>,
    /// Pool tasks a worker stole from a sibling's deque — nonzero steals
    /// mean the work-stealing actually balanced an uneven batch.
    pub steals: usize,
    /// Atom groups whose ranked prefix was served from the atom cache
    /// (memory or disk). Zero when caching is off or the factorized engine
    /// did not run.
    pub atom_cache_hits: usize,
    /// Atom groups looked up in the atom cache and not found (they
    /// computed cold and published their prefix on completion).
    pub atom_cache_misses: usize,
    /// Atoms that shared another isomorphic atom's stream within this run
    /// (intra-run dedup): `atoms - atoms_deduped` streams actually ran.
    pub atoms_deduped: usize,
    /// Approximate bytes resident in the atom cache when the session
    /// finished (the store is shared, so this is a store-wide figure).
    pub cache_bytes: usize,
    /// Constrained re-optimizations the incumbent bound deferred and never
    /// paid for — work a [`PruningPolicy::Off`] run would have done. Zero
    /// when pruning is off or never fired.
    pub nodes_pruned: usize,
    /// The incumbent cost bound when the session stopped: the heuristic
    /// seed, tightened to the most recently emitted cost. `None` when
    /// pruning is off or no bound was ever established.
    pub incumbent_cost: Option<f64>,
    /// Bytes of `VertexSet` scratch served from a per-worker arena instead
    /// of fresh allocations, summed over the session's re-optimizations.
    pub arena_bytes_reused: usize,
    /// Order of the *discovered* automorphism group of the input graph
    /// (a subgroup of the full group when the canonical search truncated).
    /// `1` when the group is trivial or the probe was skipped
    /// ([`SymmetryPolicy::Off`], label-dependent cost); `0` when the
    /// session never reached the probe (aborted preprocessing).
    pub symmetry_group_order: u128,
    /// Branches dropped and results suppressed as orbit duplicates in
    /// [`SymmetryPolicy::ModuloSymmetry`] mode. Zero otherwise.
    pub orbits_merged: usize,
    /// Constrained re-optimizations enqueued at an orbit-mate's exact cost
    /// instead of being re-run (full mode with a non-trivial group).
    pub subproblems_replayed: usize,
}

impl EnumerationStats {
    /// Average delay per result, excluding preprocessing; `None` when the
    /// run produced no results.
    pub fn average_delay(&self) -> Option<Duration> {
        if self.delays.is_empty() {
            return None;
        }
        Some(self.delays.iter().sum::<Duration>() / self.delays.len() as u32)
    }

    /// Largest single-result delay; `None` when the run produced no results.
    pub fn max_delay(&self) -> Option<Duration> {
        self.delays.iter().max().copied()
    }

    /// Renders the statistics as a single JSON object whose keys mirror the
    /// field names — the `mtr --stats-json` output and the per-response
    /// stats footer of the `mtr serve` daemon share this implementation.
    pub fn to_json(&self, stop_reason: StopReason) -> String {
        let opt_secs = |d: Option<Duration>| {
            d.map(|d| format!("{:.6}", d.as_secs_f64()))
                .unwrap_or_else(|| "null".into())
        };
        let delays: Vec<String> = self
            .delays
            .iter()
            .map(|d| format!("{:.3}", d.as_secs_f64() * 1000.0))
            .collect();
        let worker_tasks: Vec<String> = self.worker_tasks.iter().map(|t| t.to_string()).collect();
        format!(
            concat!(
                "{{\"cost\": \"{}\", \"stop_reason\": \"{}\", \"results\": {}, ",
                "\"preprocessing_secs\": {:.6}, \"preprocessing_complete\": {}, ",
                "\"total_secs\": {:.6}, \"atoms\": {}, \"minimal_separators\": {}, ",
                "\"pmcs\": {}, \"full_blocks\": {}, \"nodes_explored\": {}, ",
                "\"nodes_pruned\": {}, \"incumbent_cost\": {}, ",
                "\"max_queue_depth\": {}, \"final_queue_depth\": {}, ",
                "\"duplicates_skipped\": {}, \"diversity_rejected\": {}, ",
                "\"effective_threads\": {}, \"worker_tasks\": [{}], \"steals\": {}, ",
                "\"atom_cache_hits\": {}, \"atom_cache_misses\": {}, ",
                "\"atoms_deduped\": {}, \"cache_bytes\": {}, ",
                "\"arena_bytes_reused\": {}, ",
                "\"average_delay_secs\": {}, \"max_delay_secs\": {}, ",
                "\"delays_ms\": [{}], ",
                "\"symmetry\": {{\"group_order\": {}, \"orbits_merged\": {}, ",
                "\"subproblems_replayed\": {}}}}}"
            ),
            self.cost,
            stop_reason,
            self.results,
            self.preprocessing.as_secs_f64(),
            self.preprocessing_complete,
            self.total.as_secs_f64(),
            self.atoms,
            self.minimal_separators,
            self.pmcs,
            self.full_blocks,
            self.nodes_explored,
            self.nodes_pruned,
            self.incumbent_cost
                .map_or_else(|| "null".into(), |c| format!("{c}")),
            self.max_queue_depth,
            self.final_queue_depth,
            self.duplicates_skipped,
            self.diversity_rejected,
            self.effective_threads,
            worker_tasks.join(", "),
            self.steals,
            self.atom_cache_hits,
            self.atom_cache_misses,
            self.atoms_deduped,
            self.cache_bytes,
            self.arena_bytes_reused,
            opt_secs(self.average_delay()),
            opt_secs(self.max_delay()),
            delays.join(", "),
            self.symmetry_group_order,
            self.orbits_merged,
            self.subproblems_replayed,
        )
    }
}

/// What [`Enumerate::drive`] returns: everything about the run except the
/// results themselves (those went to the callback).
#[derive(Clone, Debug)]
pub struct SessionReport {
    /// Measurements of the run.
    pub stats: EnumerationStats,
    /// Why the session stopped.
    pub stop_reason: StopReason,
}

/// The outcome of [`Enumerate::run`]: ranked minimal triangulations plus
/// the session report.
#[derive(Clone, Debug)]
pub struct EnumerationRun {
    /// The emitted triangulations, cheapest first.
    pub results: Vec<RankedTriangulation>,
    /// Measurements of the run.
    pub stats: EnumerationStats,
    /// Why the session stopped.
    pub stop_reason: StopReason,
}

impl EnumerationRun {
    /// The cheapest result, if any.
    pub fn best(&self) -> Option<&RankedTriangulation> {
        self.results.first()
    }
}

/// The outcome of [`Enumerate::run_decompositions`]: ranked proper tree
/// decompositions plus the session report.
#[derive(Clone, Debug)]
pub struct DecompositionRun {
    /// The emitted proper tree decompositions, cheapest first.
    pub results: Vec<RankedDecomposition>,
    /// Measurements of the run (results/delays count triangulations).
    pub stats: EnumerationStats,
    /// Why the session stopped.
    pub stop_reason: StopReason,
}

// ---------------------------------------------------------------------------
// The builder
// ---------------------------------------------------------------------------

/// Where the session gets its preprocessing from.
enum Source<'a> {
    /// Preprocess this graph inside the session.
    Graph(&'a Graph),
    /// Reuse preprocessing the caller already paid for.
    Pre(&'a Preprocessed),
}

/// A cost that is either borrowed from the caller or owned by the builder
/// (the [`Enumerate::cost_named`] path).
enum CostHolder<'a, K: ?Sized> {
    Borrowed(&'a K),
    Owned(Box<K>),
}

impl<K: ?Sized> CostHolder<'_, K> {
    fn get(&self) -> &K {
        match self {
            CostHolder::Borrowed(c) => c,
            CostHolder::Owned(b) => b,
        }
    }
}

/// The deconstructed configuration of an [`Enumerate`] builder.
///
/// This is the hook that lets *higher* layers of the stack drive
/// alternative engines with the same fluent configuration: the
/// `mtr-reduce` crate turns a builder into a `SessionConfig` (via
/// [`Enumerate::into_config`]), inspects the source graph, cost, and
/// budgets, and either runs its factorized per-atom engine or rebuilds the
/// direct session with [`Enumerate::from_config`].
pub struct SessionConfig<'a, K: BagCost + Sync + ?Sized = Width> {
    source: Source<'a>,
    cost: CostHolder<'a, K>,
    /// The width bound, if one was set with [`Enumerate::width_bound`].
    pub width_bound: Option<usize>,
    /// Worker threads requested with [`Enumerate::threads`].
    pub threads: usize,
    /// Diversity filter configuration from [`Enumerate::diverse`].
    pub diversity: Option<(SimilarityMeasure, f64)>,
    /// Per-triangulation cap from [`Enumerate::proper_decompositions`].
    pub per_triangulation: Option<usize>,
    /// Result budget from [`Enumerate::max_results`].
    pub max_results: Option<usize>,
    /// Wall-clock budget from [`Enumerate::deadline`].
    pub deadline: Option<Duration>,
    /// Exploration budget from [`Enumerate::node_budget`].
    pub node_budget: Option<usize>,
    /// Atom cache policy from [`Enumerate::cache`].
    pub cache: CachePolicy,
    /// Incumbent pruning policy from [`Enumerate::pruning`].
    pub pruning: PruningPolicy,
    /// Symmetry policy from [`Enumerate::symmetry`].
    pub symmetry: SymmetryPolicy,
    /// Cooperative cancellation flag from [`Enumerate::cancel_flag`].
    pub cancel: Option<CancelFlag>,
}

impl<'a, K: BagCost + Sync + ?Sized> SessionConfig<'a, K> {
    /// The graph the session was started on with [`Enumerate::on`], or
    /// `None` when it reuses an existing [`Preprocessed`]
    /// ([`Enumerate::with`]).
    pub fn graph(&self) -> Option<&'a Graph> {
        match self.source {
            Source::Graph(g) => Some(g),
            Source::Pre(_) => None,
        }
    }

    /// The cost the session ranks by.
    pub fn cost(&self) -> &K {
        self.cost.get()
    }
}

/// Fluent builder for one enumeration session — the canonical entry point
/// of the crate. See the [module documentation](self) for an overview and
/// the method docs for the individual knobs.
pub struct Enumerate<'a, K: BagCost + Sync + ?Sized = Width> {
    source: Source<'a>,
    cost: CostHolder<'a, K>,
    width_bound: Option<usize>,
    threads: usize,
    diversity: Option<(SimilarityMeasure, f64)>,
    per_triangulation: Option<usize>,
    max_results: Option<usize>,
    deadline: Option<Duration>,
    node_budget: Option<usize>,
    cache: CachePolicy,
    pruning: PruningPolicy,
    symmetry: SymmetryPolicy,
    cancel: Option<CancelFlag>,
}

impl<K: BagCost + Sync + ?Sized> std::fmt::Debug for Enumerate<'_, K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Enumerate")
            .field("cost", &self.cost.get().name())
            .field("width_bound", &self.width_bound)
            .field("threads", &self.threads)
            .field("diversity", &self.diversity)
            .field("per_triangulation", &self.per_triangulation)
            .field("max_results", &self.max_results)
            .field("deadline", &self.deadline)
            .field("node_budget", &self.node_budget)
            .field("cache", &self.cache)
            .field("pruning", &self.pruning)
            .field("symmetry", &self.symmetry)
            .finish_non_exhaustive()
    }
}

impl<'a> Enumerate<'a, Width> {
    /// Starts a session on `graph`; preprocessing (minimal separators,
    /// PMCs, block structure) happens inside [`Enumerate::run`] and is
    /// included in the session's deadline and statistics.
    pub fn on(graph: &'a Graph) -> Self {
        Self::from_source(Source::Graph(graph))
    }

    /// Starts a session on preprocessing the caller already built — the
    /// way to amortize initialization across many sessions (different
    /// costs, budgets, or diversity settings) on one graph.
    pub fn with(pre: &'a Preprocessed) -> Self {
        Self::from_source(Source::Pre(pre))
    }

    fn from_source(source: Source<'a>) -> Self {
        Enumerate {
            source,
            cost: CostHolder::Borrowed(&Width),
            width_bound: None,
            threads: 1,
            diversity: None,
            per_triangulation: None,
            max_results: None,
            deadline: None,
            node_budget: None,
            cache: CachePolicy::Off,
            pruning: PruningPolicy::default(),
            symmetry: SymmetryPolicy::default(),
            cancel: None,
        }
    }
}

impl<'a, K: BagCost + Sync + ?Sized> Enumerate<'a, K> {
    /// Ranks by `cost` instead of the default [`Width`]. Accepts any
    /// (possibly unsized) split-monotone bag cost, including trait objects.
    pub fn cost<K2: BagCost + Sync + ?Sized>(self, cost: &'a K2) -> Enumerate<'a, K2> {
        Enumerate {
            source: self.source,
            cost: CostHolder::Borrowed(cost),
            width_bound: self.width_bound,
            threads: self.threads,
            diversity: self.diversity,
            per_triangulation: self.per_triangulation,
            max_results: self.max_results,
            deadline: self.deadline,
            node_budget: self.node_budget,
            cache: self.cache,
            pruning: self.pruning,
            symmetry: self.symmetry,
            cancel: self.cancel,
        }
    }

    /// Ranks by the shipped cost registered under `name` (see
    /// [`named_cost`] for the accepted names) — the path for CLI and
    /// configuration-driven callers.
    pub fn cost_named(self, name: &str) -> Result<Enumerate<'a, DynBagCost>, EnumerationError> {
        let cost = named_cost(name).ok_or_else(|| EnumerationError::UnknownCost(name.into()))?;
        Ok(Enumerate {
            source: self.source,
            cost: CostHolder::Owned(cost),
            width_bound: self.width_bound,
            threads: self.threads,
            diversity: self.diversity,
            per_triangulation: self.per_triangulation,
            max_results: self.max_results,
            deadline: self.deadline,
            node_budget: self.node_budget,
            cache: self.cache,
            pruning: self.pruning,
            symmetry: self.symmetry,
            cancel: self.cancel,
        })
    }

    /// Restricts the enumeration to minimal triangulations of width at most
    /// `bound` (the `MinTriangB` preprocessing of Section 5.3). Only valid
    /// on sessions started with [`Enumerate::on`]; combining it with
    /// [`Enumerate::with`] yields
    /// [`EnumerationError::WidthBoundOnPreprocessed`].
    pub fn width_bound(mut self, bound: usize) -> Self {
        self.width_bound = Some(bound);
        self
    }

    /// Fans the partition re-optimizations out over `threads` workers of a
    /// shared work-stealing pool (see [`pool`]), spawned once per session.
    /// `0` auto-detects the hardware parallelism
    /// ([`std::thread::available_parallelism`]); any other value is used
    /// as-is. The result stream is identical to the sequential one; only
    /// the delay changes. [`EnumerationStats::effective_threads`] reports
    /// the resolved count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Keeps only results whose similarity to every previously kept result
    /// is at most `threshold` under `measure` (see [`DiversityFilter`]).
    /// `threshold` must lie in `[0, 1]`.
    pub fn diverse(mut self, measure: SimilarityMeasure, threshold: f64) -> Self {
        self.diversity = Some((measure, threshold));
        self
    }

    /// For [`Enumerate::run_decompositions`]: emit at most
    /// `per_triangulation` clique trees per minimal triangulation (`None` =
    /// all of them — beware, that can be exponential in the number of bags).
    pub fn proper_decompositions(mut self, per_triangulation: Option<usize>) -> Self {
        self.per_triangulation = per_triangulation;
        self
    }

    /// Budget: stop after `k` results with [`StopReason::MaxResults`].
    pub fn max_results(mut self, k: usize) -> Self {
        self.max_results = Some(k);
        self
    }

    /// Budget: stop with [`StopReason::DeadlineExceeded`] once `deadline`
    /// wall-clock time has elapsed since the run started. The deadline
    /// covers preprocessing too: on sessions started with
    /// [`Enumerate::on`] the PMC enumeration itself (bounded or not) is
    /// aborted when the deadline expires, yielding an empty result prefix
    /// with [`EnumerationStats::preprocessing_complete`] `== false`.
    ///
    /// The deadline is checked between results, so the session overshoots
    /// by at most one result delay.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Budget: stop with [`StopReason::NodeBudgetExhausted`] once `nodes`
    /// Lawler–Murty partitions have been explored (each costs one
    /// constrained `MinTriang` re-optimization — the dominant unit of work).
    /// Checked between results, like the deadline.
    pub fn node_budget(mut self, nodes: usize) -> Self {
        self.node_budget = Some(nodes);
        self
    }

    /// Atom cache policy for reduction-enabled sessions (chain
    /// `.reduce(..)` from `mtr-reduce` to activate the factorized engine):
    /// per-atom ranked prefixes are keyed by the canonical form of the
    /// atom graph, so isomorphic atoms share one stream within a run and
    /// repeated sessions on overlapping or evolving graphs reuse each
    /// other's work. The default is [`CachePolicy::Off`] (no
    /// canonicalization, identical behavior to previous releases).
    ///
    /// [`EnumerationStats::atom_cache_hits`],
    /// [`EnumerationStats::atom_cache_misses`],
    /// [`EnumerationStats::atoms_deduped`] and
    /// [`EnumerationStats::cache_bytes`] report what the cache did. On
    /// sessions that end up running the direct engine the policy is inert.
    pub fn cache(mut self, policy: CachePolicy) -> Self {
        self.cache = policy;
        self
    }

    /// Incumbent-bounded pruning policy (see [`PruningPolicy`]). The
    /// default, [`PruningPolicy::Incumbent`], defers partitions that
    /// provably cannot beat the incumbent cost; the emitted results are
    /// identical either way, so [`PruningPolicy::Off`] exists for
    /// measurement and debugging (`mtr --no-prune`).
    ///
    /// [`EnumerationStats::nodes_pruned`] and
    /// [`EnumerationStats::incumbent_cost`] report what pruning did.
    pub fn pruning(mut self, policy: PruningPolicy) -> Self {
        self.pruning = policy;
        self
    }

    /// Symmetry policy (see [`SymmetryPolicy`]). The default,
    /// [`SymmetryPolicy::Full`], probes the automorphism group once per
    /// session (for label-invariant costs) and shares exact costs across
    /// orbit-equivalent subproblems — the emitted stream is unchanged, bit
    /// for bit. [`SymmetryPolicy::ModuloSymmetry`] quotients the stream to
    /// one cheapest representative per orbit of minimal triangulations
    /// (`mtr --modulo-symmetry`); [`SymmetryPolicy::Off`] skips the probe
    /// entirely.
    ///
    /// [`EnumerationStats::symmetry_group_order`],
    /// [`EnumerationStats::subproblems_replayed`] and
    /// [`EnumerationStats::orbits_merged`] report what the machinery did.
    pub fn symmetry(mut self, policy: SymmetryPolicy) -> Self {
        self.symmetry = policy;
        self
    }

    /// Attaches a cooperative cancellation flag: raising `flag` (from any
    /// thread) stops the session with [`StopReason::Cancelled`] at the next
    /// demand boundary — between Lawler–Murty partition expansions, never
    /// mid-re-optimization — so the results already emitted remain a valid
    /// ranked prefix. This is how a long-lived service cancels a session
    /// whose client disconnected.
    pub fn cancel_flag(mut self, flag: CancelFlag) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// Deconstructs the builder into its [`SessionConfig`] — the hook for
    /// alternative engines (see the `SessionConfig` docs). Most callers
    /// never need this; they call [`Enumerate::run`] directly.
    pub fn into_config(self) -> SessionConfig<'a, K> {
        SessionConfig {
            source: self.source,
            cost: self.cost,
            width_bound: self.width_bound,
            threads: self.threads,
            diversity: self.diversity,
            per_triangulation: self.per_triangulation,
            max_results: self.max_results,
            deadline: self.deadline,
            node_budget: self.node_budget,
            cache: self.cache,
            pruning: self.pruning,
            symmetry: self.symmetry,
            cancel: self.cancel,
        }
    }

    /// Rebuilds a builder from a [`SessionConfig`] — the inverse of
    /// [`Enumerate::into_config`], used by alternative engines to fall back
    /// to the direct session.
    pub fn from_config(config: SessionConfig<'a, K>) -> Self {
        Enumerate {
            source: config.source,
            cost: config.cost,
            width_bound: config.width_bound,
            threads: config.threads,
            diversity: config.diversity,
            per_triangulation: config.per_triangulation,
            max_results: config.max_results,
            deadline: config.deadline,
            node_budget: config.node_budget,
            cache: config.cache,
            pruning: config.pruning,
            symmetry: config.symmetry,
            cancel: config.cancel,
        }
    }

    /// Runs the session, collecting the ranked minimal triangulations.
    pub fn run(self) -> Result<EnumerationRun, EnumerationError> {
        let mut results = Vec::new();
        let report = self.drive(|t| {
            results.push(t);
            ControlFlow::Continue(())
        })?;
        Ok(EnumerationRun {
            results,
            stats: report.stats,
            stop_reason: report.stop_reason,
        })
    }

    /// Runs the session, expanding each minimal triangulation into its
    /// clique trees — the ranked enumeration of proper tree decompositions
    /// (Proposition 6.1). [`Enumerate::max_results`] counts
    /// *decompositions* here; [`Enumerate::proper_decompositions`] caps the
    /// clique trees taken per triangulation.
    pub fn run_decompositions(mut self) -> Result<DecompositionRun, EnumerationError> {
        let per = self.per_triangulation.unwrap_or(usize::MAX);
        let max = self.max_results;
        // The triangulation-level drive must not stop at `max` triangulations:
        // the budget counts expanded decompositions instead.
        self.max_results = None;
        let mut results: Vec<RankedDecomposition> = Vec::new();
        let mut reached_max = max == Some(0);
        let report = self.drive(|t| {
            let remaining = max.map_or(usize::MAX, |k| k.saturating_sub(results.len()));
            if remaining == 0 {
                reached_max = true;
                return ControlFlow::Break(());
            }
            let limit = per.min(remaining);
            let trees = clique_trees_from_cliques(&t.triangulation, t.bags.clone(), limit);
            for tree in trees {
                results.push(RankedDecomposition {
                    decomposition: tree,
                    triangulation: t.triangulation.clone(),
                    cost: t.cost,
                });
            }
            if max.is_some_and(|k| results.len() >= k) {
                reached_max = true;
                return ControlFlow::Break(());
            }
            ControlFlow::Continue(())
        })?;
        let stop_reason = if reached_max {
            StopReason::MaxResults
        } else {
            report.stop_reason
        };
        Ok(DecompositionRun {
            results,
            stats: report.stats,
            stop_reason,
        })
    }

    /// Streams the session's results into `on_result` without collecting
    /// them — the any-time interface. Returning
    /// [`ControlFlow::Break`] stops the session with
    /// [`StopReason::Stopped`]; the configured budgets apply as usual.
    pub fn drive<F>(self, on_result: F) -> Result<SessionReport, EnumerationError>
    where
        F: FnMut(RankedTriangulation) -> ControlFlow<()>,
    {
        let started = Instant::now();
        let Enumerate {
            source,
            cost,
            width_bound,
            threads,
            diversity,
            per_triangulation: _,
            max_results,
            deadline,
            node_budget,
            // Inert on the direct engine: there are no atoms to cache.
            cache: _,
            pruning,
            symmetry,
            cancel,
        } = self;

        if let Some((_, threshold)) = diversity {
            if !(0.0..=1.0).contains(&threshold) {
                return Err(EnumerationError::InvalidDiversityThreshold(threshold));
            }
        }

        let threads = resolve_threads(threads);
        let cost_name = cost.get().name();
        session_metrics().sessions.incr();
        let mut pre_span = mtr_obs::span("session.preprocess");
        pre_span.attr("cost", cost_name.as_str());
        let owned_pre: Preprocessed;
        let pre: &Preprocessed = match source {
            Source::Pre(p) => {
                if width_bound.is_some() {
                    return Err(EnumerationError::WidthBoundOnPreprocessed);
                }
                p
            }
            Source::Graph(g) => {
                let aborted_init = |started: &Instant| {
                    let elapsed = started.elapsed();
                    let stats = EnumerationStats {
                        cost: cost_name.clone(),
                        preprocessing: elapsed,
                        preprocessing_complete: false,
                        total: elapsed,
                        effective_threads: threads,
                        ..EnumerationStats::default()
                    };
                    SessionReport {
                        stats,
                        stop_reason: StopReason::DeadlineExceeded,
                    }
                };
                // The PMC enumeration is inherently incremental (prefix by
                // prefix); the candidate-structure build behind
                // `from_parts_threaded` fans out over the pool workers.
                owned_pre = match (width_bound, deadline) {
                    (Some(b), Some(d)) => {
                        match potential_maximal_cliques_bounded_with_deadline(g, b + 1, d) {
                            Ok(e) => Preprocessed::from_parts_threaded(
                                g,
                                e.minimal_separators,
                                e.pmcs,
                                Some(b),
                                threads,
                            ),
                            Err(_) => return Ok(aborted_init(&started)),
                        }
                    }
                    (Some(b), None) => {
                        let e = potential_maximal_cliques_bounded(g, b + 1);
                        Preprocessed::from_parts_threaded(
                            g,
                            e.minimal_separators,
                            e.pmcs,
                            Some(b),
                            threads,
                        )
                    }
                    (None, Some(d)) => match potential_maximal_cliques_with_deadline(g, d) {
                        Ok(e) => Preprocessed::from_parts_threaded(
                            g,
                            e.minimal_separators,
                            e.pmcs,
                            None,
                            threads,
                        ),
                        Err(_) => return Ok(aborted_init(&started)),
                    },
                    (None, None) => {
                        let e = potential_maximal_cliques(g);
                        Preprocessed::from_parts_threaded(
                            g,
                            e.minimal_separators,
                            e.pmcs,
                            None,
                            threads,
                        )
                    }
                };
                &owned_pre
            }
        };

        let cost_ref = cost.get();
        let filter = diversity
            .map(|(measure, threshold)| DiversityFilter::new(pre.graph(), measure, threshold));
        // Seed the incumbent from a heuristic minimal triangulation before
        // any partition is expanded — children of the very first expansion
        // can already be deferred against it.
        let incumbent = match pruning {
            PruningPolicy::Incumbent => heuristic_incumbent(pre.graph(), cost_ref, width_bound),
            PruningPolicy::Off => None,
        };
        // Probe the automorphism group once per session. Skipped entirely
        // for SymmetryPolicy::Off and for label-dependent costs (where an
        // automorphism need not preserve the ranking); a trivial group
        // probes to `None` and the engines run exactly as before.
        let orbit_ctx = if symmetry != SymmetryPolicy::Off && cost_ref.label_invariant() {
            OrbitContext::probe(pre.graph())
        } else {
            None
        };

        let mut stats = EnumerationStats {
            cost: cost_name,
            preprocessing: started.elapsed(),
            preprocessing_complete: true,
            minimal_separators: pre.minimal_separators().len(),
            pmcs: pre.pmcs().len(),
            full_blocks: pre.full_blocks().len(),
            effective_threads: threads,
            symmetry_group_order: orbit_ctx.as_ref().map_or(1, |c| c.group_order()),
            ..EnumerationStats::default()
        };
        drop(pre_span);
        session_metrics()
            .preprocess_ns
            .record(saturating_ns(stats.preprocessing));
        let (stop_reason, engine_failure) = if threads > 1 {
            // One pool for the whole session: workers (and their scratch)
            // are spawned here and serve every expansion batch.
            pool::scoped(threads, |p| {
                let mut inner = ParallelRankedEnumerator::with_pool(pre, cost_ref, p);
                if pruning.is_enabled() {
                    inner = inner.with_pruning(incumbent);
                }
                if let Some(flag) = cancel.clone() {
                    inner = inner.with_cancel(flag);
                }
                if let Some(ctx) = &orbit_ctx {
                    inner = match symmetry {
                        SymmetryPolicy::ModuloSymmetry => inner.with_modulo_symmetry(ctx.clone()),
                        _ => inner.with_orbit_sharing(ctx.clone()),
                    };
                }
                let mut engine: Engine<'_, '_, K> = Engine::Parallel(inner);
                let stop_reason = drive_engine(
                    &mut engine,
                    filter,
                    &mut stats,
                    started,
                    max_results,
                    deadline,
                    node_budget,
                    cancel.as_ref(),
                    on_result,
                );
                let pool_stats = p.stats();
                stats.worker_tasks = pool_stats.worker_tasks;
                stats.steals = pool_stats.steals;
                // The parallel engine's scratch lives in the workers, so its
                // arena savings are reported by the pool, not the engine.
                stats.arena_bytes_reused += pool_stats.arena_bytes_reused;
                (stop_reason, engine.failure())
            })
        } else {
            let mut inner = RankedEnumerator::new(pre, cost_ref);
            if pruning.is_enabled() {
                inner = inner.with_pruning(incumbent);
            }
            if let Some(flag) = cancel.clone() {
                inner = inner.with_cancel(flag);
            }
            if let Some(ctx) = &orbit_ctx {
                inner = match symmetry {
                    SymmetryPolicy::ModuloSymmetry => inner.with_modulo_symmetry(ctx.clone()),
                    _ => inner.with_orbit_sharing(ctx.clone()),
                };
            }
            let mut engine: Engine<'_, '_, K> = Engine::Sequential(inner);
            let stop_reason = drive_engine(
                &mut engine,
                filter,
                &mut stats,
                started,
                max_results,
                deadline,
                node_budget,
                cancel.as_ref(),
                on_result,
            );
            (stop_reason, engine.failure())
        };
        if let Some(message) = engine_failure {
            // The engine went quiet because a pool task died, not because
            // the space was exhausted: fail the session, typed.
            return Err(EnumerationError::WorkerPanicked(message));
        }
        Ok(SessionReport { stats, stop_reason })
    }
}

/// The interface between the generic session loop and a result-producing
/// engine. The direct engines ([`RankedEnumerator`],
/// [`ParallelRankedEnumerator`]) implement it behind the scenes, and
/// alternative engines (the factorized per-atom enumerator of
/// `mtr-reduce`) implement it to reuse the *exact* budget, diversity, and
/// statistics semantics of a session through [`drive_engine`].
pub trait SessionEngine {
    /// Produces the next ranked result, or `None` when exhausted.
    fn next_result(&mut self) -> Option<RankedTriangulation>;
    /// Entries currently pending in the engine's priority queue.
    fn queue_depth(&self) -> usize;
    /// Work units (Lawler–Murty partitions) explored so far — the quantity
    /// [`Enumerate::node_budget`] is checked against.
    fn nodes_explored(&self) -> usize;
    /// Duplicate results skipped (`0` for engines that cannot emit them).
    fn duplicates_skipped(&self) -> usize;
    /// Re-optimizations deferred by incumbent pruning and never paid for
    /// (`0` for engines without pruning).
    fn nodes_pruned(&self) -> usize {
        0
    }
    /// The engine's current incumbent cost bound, if pruning is active.
    fn incumbent_cost(&self) -> Option<CostValue> {
        None
    }
    /// Bytes of `VertexSet` scratch the engine served from its own arena
    /// (engines whose scratch lives in a worker pool report `0` here; the
    /// session adds the pool's figure).
    fn arena_bytes_reused(&self) -> usize {
        0
    }
    /// Re-optimizations the engine replayed from an orbit-mate's exact
    /// cost (`0` for engines without orbit sharing).
    fn orbit_replays(&self) -> usize {
        0
    }
    /// Branches/results the engine merged into their orbit representative
    /// (`0` for engines without modulo-symmetry).
    fn orbits_merged(&self) -> usize {
        0
    }
    /// The message of a contained worker-pool task failure that aborted
    /// the engine, if one did. An engine that failed returns `None` from
    /// [`SessionEngine::next_result`] (the emitted prefix stays valid);
    /// the session checks this afterwards and converts the apparent
    /// exhaustion into [`EnumerationError::WorkerPanicked`].
    fn failure(&self) -> Option<String> {
        None
    }
}

/// The shared emission loop of every session: drives `engine` until it is
/// exhausted, a budget trips, or `on_result` breaks, recording per-result
/// delays, queue depths, and rejection counts into `stats` (including the
/// final `total`/`final_queue_depth`/`nodes_explored` bookkeeping).
///
/// `started` anchors both the deadline and `stats.total`, so it must be
/// the instant the session (including preprocessing) began. This is the
/// single source of truth for budget semantics — alternative engines must
/// go through it rather than reimplementing the loop.
#[allow(clippy::too_many_arguments)] // mirrors the session's knobs 1:1
pub fn drive_engine<E, F>(
    engine: &mut E,
    mut filter: Option<DiversityFilter>,
    stats: &mut EnumerationStats,
    started: Instant,
    max_results: Option<usize>,
    deadline: Option<Duration>,
    node_budget: Option<usize>,
    cancel: Option<&CancelFlag>,
    mut on_result: F,
) -> StopReason
where
    E: SessionEngine,
    F: FnMut(RankedTriangulation) -> ControlFlow<()>,
{
    // `Instant + Duration` can overflow for practically-infinite
    // deadlines; a non-representable deadline is simply never hit.
    let deadline_at = deadline.and_then(|d| started.checked_add(d));
    let mut last_emit = Instant::now();
    let cancelled = || cancel.is_some_and(|c| c.is_cancelled());
    let metrics = session_metrics();
    let mut emit_span = mtr_obs::span("session.emit");

    let stop_reason = loop {
        if cancelled() {
            break StopReason::Cancelled;
        }
        if max_results.is_some_and(|k| stats.results >= k) {
            break StopReason::MaxResults;
        }
        if deadline_at.is_some_and(|at| Instant::now() >= at) {
            break StopReason::DeadlineExceeded;
        }
        if node_budget.is_some_and(|n| engine.nodes_explored() >= n) {
            break StopReason::NodeBudgetExhausted;
        }
        let advance_started = mtr_obs::clock();
        let next = engine.next_result();
        metrics.advance_ns.record_elapsed(advance_started);
        let Some(result) = next else {
            // An engine holding the same flag bails out mid-demand with
            // `None`; that is a cancellation, not exhaustion.
            break if cancelled() {
                StopReason::Cancelled
            } else {
                StopReason::Exhausted
            };
        };
        stats.max_queue_depth = stats.max_queue_depth.max(engine.queue_depth());
        if let Some(f) = filter.as_mut() {
            if !f.admit(&result) {
                stats.diversity_rejected += 1;
                continue;
            }
        }
        let now = Instant::now();
        let delay = now.duration_since(last_emit);
        stats.delays.push(delay);
        last_emit = now;
        stats.results += 1;
        metrics.results.incr();
        metrics.delay_ns.record(saturating_ns(delay));
        if on_result(result).is_break() {
            break StopReason::Stopped;
        }
    };

    stats.final_queue_depth = engine.queue_depth();
    stats.nodes_explored = engine.nodes_explored();
    stats.duplicates_skipped = engine.duplicates_skipped();
    stats.nodes_pruned = engine.nodes_pruned();
    stats.incumbent_cost = engine
        .incumbent_cost()
        .filter(|c| c.is_finite())
        .map(|c| c.value());
    stats.arena_bytes_reused = engine.arena_bytes_reused();
    stats.subproblems_replayed = engine.orbit_replays();
    stats.orbits_merged = engine.orbits_merged();
    metrics.orbit_replays.add(stats.subproblems_replayed as u64);
    metrics.nodes_pruned.add(stats.nodes_pruned as u64);
    stats.total = started.elapsed();
    if emit_span.is_active() {
        emit_span.attr("results", stats.results.to_string());
        emit_span.attr("stop", stop_reason.to_string());
    }
    drop(emit_span);
    stop_reason
}

/// The engine layer the session drives: either ranked enumerator, behind a
/// uniform statistics interface.
enum Engine<'e, 'p, K: BagCost + Sync + ?Sized> {
    Sequential(RankedEnumerator<'e, K>),
    Parallel(ParallelRankedEnumerator<'e, 'p, K>),
}

impl<K: BagCost + Sync + ?Sized> SessionEngine for Engine<'_, '_, K> {
    fn next_result(&mut self) -> Option<RankedTriangulation> {
        match self {
            Engine::Sequential(e) => e.next(),
            Engine::Parallel(e) => e.next(),
        }
    }

    fn queue_depth(&self) -> usize {
        match self {
            Engine::Sequential(e) => e.queue_depth(),
            Engine::Parallel(e) => e.queue_depth(),
        }
    }

    fn nodes_explored(&self) -> usize {
        match self {
            Engine::Sequential(e) => e.nodes_explored(),
            Engine::Parallel(e) => e.nodes_explored(),
        }
    }

    fn duplicates_skipped(&self) -> usize {
        match self {
            Engine::Sequential(e) => e.duplicates_skipped(),
            Engine::Parallel(e) => e.duplicates_skipped(),
        }
    }

    fn nodes_pruned(&self) -> usize {
        match self {
            Engine::Sequential(e) => e.nodes_pruned(),
            Engine::Parallel(e) => e.nodes_pruned(),
        }
    }

    fn incumbent_cost(&self) -> Option<CostValue> {
        match self {
            Engine::Sequential(e) => e.incumbent(),
            Engine::Parallel(e) => e.incumbent(),
        }
    }

    fn arena_bytes_reused(&self) -> usize {
        match self {
            Engine::Sequential(e) => e.arena_bytes_reused(),
            // Reported by the worker pool (see the session's parallel path).
            Engine::Parallel(_) => 0,
        }
    }

    fn orbit_replays(&self) -> usize {
        match self {
            Engine::Sequential(e) => e.orbit_replays(),
            Engine::Parallel(e) => e.orbit_replays(),
        }
    }

    fn orbits_merged(&self) -> usize {
        match self {
            Engine::Sequential(e) => e.orbits_merged(),
            Engine::Parallel(e) => e.orbits_merged(),
        }
    }

    fn failure(&self) -> Option<String> {
        match self {
            // The sequential engine runs inline: a panic there propagates
            // on the calling thread and is the caller's to catch.
            Engine::Sequential(_) => None,
            Engine::Parallel(e) => e.failure().map(str::to_string),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CostValue, FillIn};
    use mtr_chordal::is_minimal_triangulation;
    use mtr_graph::paper_example_graph;

    fn c6() -> Graph {
        Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)])
    }

    #[test]
    fn default_cost_is_width() {
        let g = paper_example_graph();
        let run = Enumerate::on(&g).run().unwrap();
        assert_eq!(run.stats.cost, "width");
        assert_eq!(run.results.len(), 2);
        assert_eq!(run.best().unwrap().width(), 2);
        assert_eq!(run.stop_reason, StopReason::Exhausted);
    }

    #[test]
    fn max_results_budget_truncates_with_reason() {
        let g = c6();
        let run = Enumerate::on(&g)
            .cost(&FillIn)
            .max_results(3)
            .run()
            .unwrap();
        assert_eq!(run.results.len(), 3);
        assert_eq!(run.stop_reason, StopReason::MaxResults);
        for w in run.results.windows(2) {
            assert!(w[0].cost <= w[1].cost);
        }
        // A zero budget yields an empty prefix.
        let none = Enumerate::on(&g)
            .cost(&FillIn)
            .max_results(0)
            .run()
            .unwrap();
        assert!(none.results.is_empty());
        assert_eq!(none.stop_reason, StopReason::MaxResults);
    }

    #[test]
    fn generous_budgets_do_not_truncate() {
        let g = c6();
        let run = Enumerate::on(&g)
            .cost(&FillIn)
            .max_results(1000)
            .deadline(Duration::from_secs(3600))
            .node_budget(1_000_000)
            .run()
            .unwrap();
        assert_eq!(run.results.len(), 14, "C6 has 14 minimal triangulations");
        assert_eq!(run.stop_reason, StopReason::Exhausted);
    }

    #[test]
    fn zero_deadline_on_preprocessed_yields_empty_prefix() {
        let g = c6();
        let pre = Preprocessed::new(&g);
        let run = Enumerate::with(&pre)
            .cost(&FillIn)
            .deadline(Duration::ZERO)
            .run()
            .unwrap();
        assert!(run.results.is_empty());
        assert_eq!(run.stop_reason, StopReason::DeadlineExceeded);
        assert!(run.stats.preprocessing_complete);
    }

    #[test]
    fn node_budget_stops_early() {
        let g = c6();
        let all = Enumerate::on(&g).cost(&FillIn).run().unwrap();
        let budgeted = Enumerate::on(&g)
            .cost(&FillIn)
            .node_budget(1)
            .run()
            .unwrap();
        assert_eq!(budgeted.stop_reason, StopReason::NodeBudgetExhausted);
        assert!(budgeted.results.len() < all.results.len());
        // The budgeted results are a prefix of the full stream.
        for (b, f) in budgeted.results.iter().zip(&all.results) {
            assert_eq!(b.cost, f.cost);
        }
        let zero = Enumerate::on(&g)
            .cost(&FillIn)
            .node_budget(0)
            .run()
            .unwrap();
        assert!(zero.results.is_empty());
        assert_eq!(zero.stop_reason, StopReason::NodeBudgetExhausted);
    }

    #[test]
    fn stats_are_populated() {
        let g = c6();
        let run = Enumerate::on(&g).cost(&FillIn).run().unwrap();
        let s = &run.stats;
        assert_eq!(s.cost, "fill-in");
        assert_eq!(s.results, 14);
        assert_eq!(s.delays.len(), 14);
        assert!(s.preprocessing_complete);
        assert!(s.total >= s.preprocessing);
        assert!(s.minimal_separators > 0);
        assert!(s.pmcs > 0);
        assert!(s.full_blocks > 0);
        assert!(s.max_queue_depth > 0);
        assert!(s.nodes_explored > 0);
        assert_eq!(s.duplicates_skipped, 0);
        assert!(s.average_delay().is_some());
        assert!(s.max_delay().unwrap() >= s.average_delay().unwrap());
        // An exhausted run drains its queue of satisfiable partitions.
        assert!(s.final_queue_depth <= s.max_queue_depth);
    }

    #[test]
    fn threads_match_sequential_output() {
        let g = c6();
        let sequential = Enumerate::on(&g).cost(&FillIn).run().unwrap();
        let parallel = Enumerate::on(&g).cost(&FillIn).threads(4).run().unwrap();
        assert_eq!(sequential.results.len(), parallel.results.len());
        let seq_costs: Vec<CostValue> = sequential.results.iter().map(|r| r.cost).collect();
        let par_costs: Vec<CostValue> = parallel.results.iter().map(|r| r.cost).collect();
        assert_eq!(seq_costs, par_costs);
    }

    #[test]
    fn thread_stats_report_what_ran() {
        let g = c6();
        let sequential = Enumerate::on(&g).cost(&FillIn).run().unwrap();
        assert_eq!(sequential.stats.effective_threads, 1);
        assert!(sequential.stats.worker_tasks.is_empty());
        assert_eq!(sequential.stats.steals, 0);

        let four = Enumerate::on(&g).cost(&FillIn).threads(4).run().unwrap();
        assert_eq!(four.stats.effective_threads, 4);
        assert_eq!(four.stats.worker_tasks.len(), 4);
        // Every explored Lawler–Murty partition is exactly one pool task.
        assert_eq!(
            four.stats.worker_tasks.iter().sum::<usize>(),
            four.stats.nodes_explored
        );

        // `threads(0)` auto-detects and reports the resolved width.
        let auto = Enumerate::on(&g).cost(&FillIn).threads(0).run().unwrap();
        let detected = std::thread::available_parallelism().map_or(1, |n| n.get());
        assert_eq!(auto.stats.effective_threads, detected);
        assert_eq!(auto.results.len(), sequential.results.len());
    }

    #[test]
    fn named_cost_and_unknown_cost() {
        let g = paper_example_graph();
        let run = Enumerate::on(&g).cost_named("fill").unwrap().run().unwrap();
        assert_eq!(run.stats.cost, "fill-in");
        assert_eq!(run.results[0].fill_in(&g), 1);
        let err = Enumerate::on(&g).cost_named("bogus").unwrap_err();
        assert_eq!(err, EnumerationError::UnknownCost("bogus".into()));
    }

    #[test]
    fn invalid_diversity_threshold_is_an_error() {
        let g = c6();
        let err = Enumerate::on(&g)
            .cost(&FillIn)
            .diverse(SimilarityMeasure::FillJaccard, 1.5)
            .run()
            .unwrap_err();
        assert_eq!(err, EnumerationError::InvalidDiversityThreshold(1.5));
    }

    #[test]
    fn width_bound_on_preprocessed_is_an_error() {
        let g = c6();
        let pre = Preprocessed::new(&g);
        let err = Enumerate::with(&pre).width_bound(2).run().unwrap_err();
        assert_eq!(err, EnumerationError::WidthBoundOnPreprocessed);
    }

    #[test]
    fn width_bound_restricts_results() {
        let g = c6();
        let bounded = Enumerate::on(&g)
            .cost(&FillIn)
            .width_bound(2)
            .run()
            .unwrap();
        assert_eq!(bounded.results.len(), 14);
        let impossible = Enumerate::on(&g)
            .cost(&FillIn)
            .width_bound(1)
            .run()
            .unwrap();
        assert!(impossible.results.is_empty());
        assert_eq!(impossible.stop_reason, StopReason::Exhausted);
    }

    #[test]
    fn width_bound_and_deadline_compose() {
        let g = c6();
        // A generous deadline changes nothing about the bounded session.
        let generous = Enumerate::on(&g)
            .cost(&FillIn)
            .width_bound(2)
            .deadline(Duration::from_secs(3600))
            .run()
            .unwrap();
        assert_eq!(generous.results.len(), 14);
        assert_eq!(generous.stop_reason, StopReason::Exhausted);
        // A zero deadline aborts the bounded preprocessing itself.
        let aborted = Enumerate::on(&g)
            .cost(&FillIn)
            .width_bound(2)
            .deadline(Duration::ZERO)
            .run()
            .unwrap();
        assert!(aborted.results.is_empty());
        assert_eq!(aborted.stop_reason, StopReason::DeadlineExceeded);
        assert!(!aborted.stats.preprocessing_complete);
    }

    #[test]
    fn diversity_filters_and_counts_rejections() {
        let g = c6();
        let run = Enumerate::on(&g)
            .cost(&FillIn)
            .diverse(SimilarityMeasure::FillJaccard, 0.3)
            .run()
            .unwrap();
        assert!(!run.results.is_empty());
        assert!(run.results.len() < 14);
        assert_eq!(run.results.len() + run.stats.diversity_rejected, 14);
        assert_eq!(run.stats.results, run.results.len());
    }

    #[test]
    fn drive_callback_can_stop() {
        let g = c6();
        let mut seen = 0usize;
        let report = Enumerate::on(&g)
            .cost(&FillIn)
            .drive(|_| {
                seen += 1;
                if seen == 5 {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            })
            .unwrap();
        assert_eq!(seen, 5);
        assert_eq!(report.stats.results, 5);
        assert_eq!(report.stop_reason, StopReason::Stopped);
    }

    #[test]
    fn decompositions_with_budgets() {
        let g = paper_example_graph();
        let one_each = Enumerate::on(&g)
            .cost(&FillIn)
            .proper_decompositions(Some(1))
            .run_decompositions()
            .unwrap();
        assert_eq!(one_each.results.len(), 2);
        assert_eq!(one_each.stop_reason, StopReason::Exhausted);
        for d in &one_each.results {
            assert!(d.decomposition.is_valid(&g));
            assert!(d.decomposition.is_clique_tree_of(&d.triangulation));
        }
        let capped = Enumerate::on(&g)
            .cost(&FillIn)
            .max_results(3)
            .run_decompositions()
            .unwrap();
        assert_eq!(capped.results.len(), 3);
        assert_eq!(capped.stop_reason, StopReason::MaxResults);
        assert!(capped.results.windows(2).all(|w| w[0].cost <= w[1].cost));
    }

    #[test]
    fn results_are_sound_minimal_triangulations() {
        let g = c6();
        let run = Enumerate::on(&g)
            .cost(&FillIn)
            .max_results(5)
            .run()
            .unwrap();
        for r in &run.results {
            assert!(is_minimal_triangulation(&g, &r.triangulation));
        }
    }

    #[test]
    fn pruning_on_and_off_emit_identical_runs() {
        let g = c6();
        for threads in [1, 4] {
            let pruned = Enumerate::on(&g)
                .cost(&FillIn)
                .threads(threads)
                .run()
                .unwrap();
            let plain = Enumerate::on(&g)
                .cost(&FillIn)
                .threads(threads)
                .pruning(PruningPolicy::Off)
                .run()
                .unwrap();
            assert_eq!(pruned.results.len(), plain.results.len());
            let pruned_costs: Vec<CostValue> = pruned.results.iter().map(|r| r.cost).collect();
            let plain_costs: Vec<CostValue> = plain.results.iter().map(|r| r.cost).collect();
            assert_eq!(pruned_costs, plain_costs);
            // Pruning is the default; opting out zeroes its stats.
            assert_eq!(plain.stats.nodes_pruned, 0);
            assert_eq!(plain.stats.incumbent_cost, None);
            // An exhausted pruned run paid every re-optimization eventually,
            // and ends with the incumbent at the costliest emitted result.
            assert_eq!(
                pruned.stats.incumbent_cost,
                Some(pruned.results.last().unwrap().cost.value())
            );
        }
    }

    #[test]
    fn pruned_prefix_defers_work() {
        // A 3x3 grid has non-uniform fill-in costs, so the heuristic seed
        // and the emitted frontier both defer real work in a top-3 run.
        let g = Graph::from_edges(
            9,
            &[
                (0, 1),
                (1, 2),
                (3, 4),
                (4, 5),
                (6, 7),
                (7, 8),
                (0, 3),
                (3, 6),
                (1, 4),
                (4, 7),
                (2, 5),
                (5, 8),
            ],
        );
        let pruned = Enumerate::on(&g)
            .cost(&FillIn)
            .max_results(3)
            .run()
            .unwrap();
        let plain = Enumerate::on(&g)
            .cost(&FillIn)
            .max_results(3)
            .pruning(PruningPolicy::Off)
            .run()
            .unwrap();
        let pruned_costs: Vec<CostValue> = pruned.results.iter().map(|r| r.cost).collect();
        let plain_costs: Vec<CostValue> = plain.results.iter().map(|r| r.cost).collect();
        assert_eq!(pruned_costs, plain_costs);
        assert!(pruned.stats.nodes_pruned > 0);
        assert!(pruned.stats.nodes_explored < plain.stats.nodes_explored);
    }

    #[test]
    fn arena_bytes_are_reported() {
        let g = c6();
        let sequential = Enumerate::on(&g).cost(&FillIn).run().unwrap();
        assert!(sequential.stats.arena_bytes_reused > 0);
        let parallel = Enumerate::on(&g).cost(&FillIn).threads(4).run().unwrap();
        assert!(parallel.stats.arena_bytes_reused > 0);
    }

    #[test]
    fn heuristic_incumbent_is_a_sound_upper_bound() {
        let g = c6();
        let best = Enumerate::on(&g)
            .cost(&FillIn)
            .max_results(1)
            .run()
            .unwrap();
        let seed = heuristic_incumbent(&g, &FillIn, None).unwrap();
        assert!(seed >= best.results[0].cost);
        // A width bound below every heuristic candidate leaves no seed.
        assert_eq!(heuristic_incumbent(&g, &FillIn, Some(0)), None);
    }

    #[test]
    fn error_display_is_informative() {
        let e = EnumerationError::UnknownCost("nope".into());
        assert!(e.to_string().contains("nope"));
        let p: EnumerationError = ParseError::BadEdge {
            line_number: 7,
            line: "x y".into(),
        }
        .into();
        assert!(p.to_string().contains("line 7"));
        let io = EnumerationError::Io {
            path: "missing.gr".into(),
            message: "no such file".into(),
        };
        assert!(io.to_string().contains("missing.gr"));
        assert!(EnumerationError::WidthBoundOnPreprocessed
            .to_string()
            .contains("width bound"));
    }
}
