//! `MinTriang⟨κ⟩` — computing a minimum-cost minimal triangulation
//! (Section 5, Figure 3 of the paper), generalized Bouchitté–Todinca.
//!
//! The dynamic program processes the full blocks `(S, C)` of the graph in
//! ascending `|S ∪ C|` order. For each block it chooses the potential
//! maximal clique `Ω` with `S ⊂ Ω ⊆ S ∪ C` that minimizes the cost of the
//! triangulation assembled from `Ω` and the previously computed optimal
//! triangulations of the sub-blocks (Equation (1)); the top level picks the
//! best `Ω ∈ PMC(G)` for the whole graph. Any split-monotone bag cost can be
//! plugged in, including the constrained costs `κ[I, X]` used by the ranked
//! enumeration.
//!
//! The expensive part — minimal separators, potential maximal cliques, full
//! blocks, and the combinatorial structure of which PMCs can realize which
//! blocks — does not depend on the cost function, so it is computed once
//! into a [`Preprocessed`] value and shared by every `MinTriang` invocation
//! (exactly the "initialization step" the paper's experiments report).

use crate::cost::{BagCost, ChildSolution, CostValue};
use crate::pool::{self, Scratch};
use mtr_chordal::cliques::maximal_cliques_chordal;
use mtr_graph::{Graph, VertexSet};
use mtr_pmc::enumerate::{potential_maximal_cliques, potential_maximal_cliques_bounded};
use mtr_separators::blocks::{full_blocks, Block};
use std::collections::HashMap;

/// A minimal triangulation together with its bag structure and cost.
#[derive(Clone, Debug)]
pub struct Triangulation {
    /// The triangulation `H` itself (a chordal supergraph of the input).
    pub graph: Graph,
    /// The maximal cliques of `H` (the bags of its clique trees).
    pub bags: Vec<VertexSet>,
    /// The cost assigned by the bag cost that produced this triangulation.
    pub cost: CostValue,
}

impl Triangulation {
    /// Width of the triangulation: largest bag size minus one.
    pub fn width(&self) -> usize {
        self.bags
            .iter()
            .map(|b| b.len())
            .max()
            .unwrap_or(1)
            .saturating_sub(1)
    }

    /// Fill-in relative to `g`: number of edges of the triangulation absent
    /// from `g`.
    pub fn fill_in(&self, g: &Graph) -> usize {
        self.graph.m() - g.m()
    }

    /// The fill edges relative to `g`, as a canonical sorted list. Two
    /// minimal triangulations of the same graph are equal iff their fill
    /// sets are equal, so this doubles as an identity key.
    pub fn fill_edges(&self, g: &Graph) -> Vec<(u32, u32)> {
        let mut fill = g.fill_edges_of(&self.graph);
        fill.sort_unstable();
        fill
    }
}

/// One candidate choice of `Ω` for a block (or for the top level): the PMC
/// index plus the indices of the full blocks its components induce.
#[derive(Clone, Debug)]
struct Candidate {
    pmc: usize,
    children: Vec<usize>,
}

/// The cost-independent initialization shared by all `MinTriang` /
/// `RankedTriang` invocations on one graph: minimal separators, potential
/// maximal cliques, full blocks, and the candidate structure of the dynamic
/// program.
#[derive(Clone, Debug)]
pub struct Preprocessed {
    graph: Graph,
    minimal_separators: Vec<VertexSet>,
    pmcs: Vec<VertexSet>,
    blocks: Vec<Block>,
    /// `blocks[i].vertices()`, cached (used as the DP scope of block `i`).
    block_vertices: Vec<VertexSet>,
    /// For every full block, the candidate PMCs (with their child blocks).
    block_candidates: Vec<Vec<Candidate>>,
    /// Connected components of the graph.
    components: Vec<VertexSet>,
    /// For every connected component, the top-level candidates.
    top_candidates: Vec<Vec<Candidate>>,
    /// The width bound used during preprocessing, if any.
    width_bound: Option<usize>,
}

impl Preprocessed {
    /// Full (unbounded) preprocessing of `g`: all minimal separators and all
    /// potential maximal cliques. Polynomial under the poly-MS assumption.
    pub fn new(g: &Graph) -> Self {
        let enumeration = potential_maximal_cliques(g);
        Self::build(g, enumeration.minimal_separators, enumeration.pmcs, None, 1)
    }

    /// Width-bounded preprocessing (`MinTriangB`): only separators of size
    /// `≤ width_bound` and PMCs of size `≤ width_bound + 1` are considered,
    /// which bounds the work without the poly-MS assumption (Section 5.3).
    pub fn new_bounded(g: &Graph, width_bound: usize) -> Self {
        let enumeration = potential_maximal_cliques_bounded(g, width_bound + 1);
        let seps = enumeration
            .minimal_separators
            .into_iter()
            .filter(|s| s.len() <= width_bound)
            .collect();
        Self::build(g, seps, enumeration.pmcs, Some(width_bound), 1)
    }

    /// Builds the candidate structure from precomputed separators and PMCs.
    pub fn from_parts(g: &Graph, minimal_separators: Vec<VertexSet>, pmcs: Vec<VertexSet>) -> Self {
        Self::build(g, minimal_separators, pmcs, None, 1)
    }

    /// Like [`Preprocessed::from_parts`], but for parts produced by a
    /// width-bounded enumeration: separators larger than `width_bound` are
    /// dropped (mirroring [`Preprocessed::new_bounded`]) and the bound is
    /// recorded.
    pub fn from_parts_bounded(
        g: &Graph,
        minimal_separators: Vec<VertexSet>,
        pmcs: Vec<VertexSet>,
        width_bound: usize,
    ) -> Self {
        let seps = minimal_separators
            .into_iter()
            .filter(|s| s.len() <= width_bound)
            .collect();
        Self::build(g, seps, pmcs, Some(width_bound), 1)
    }

    /// The threaded constructor behind the session layer: like
    /// [`Preprocessed::from_parts`] / [`Preprocessed::from_parts_bounded`]
    /// (the bound filter applies when `width_bound` is set), but the
    /// per-block candidate resolution — the embarrassingly parallel part of
    /// the initialization — fans out over `threads` pool workers.
    pub fn from_parts_threaded(
        g: &Graph,
        minimal_separators: Vec<VertexSet>,
        pmcs: Vec<VertexSet>,
        width_bound: Option<usize>,
        threads: usize,
    ) -> Self {
        let seps = match width_bound {
            Some(b) => minimal_separators
                .into_iter()
                .filter(|s| s.len() <= b)
                .collect(),
            None => minimal_separators,
        };
        Self::build(g, seps, pmcs, width_bound, threads)
    }

    fn build(
        g: &Graph,
        minimal_separators: Vec<VertexSet>,
        pmcs: Vec<VertexSet>,
        width_bound: Option<usize>,
        threads: usize,
    ) -> Self {
        let blocks = full_blocks(g, &minimal_separators);
        let block_vertices: Vec<VertexSet> = blocks.iter().map(Block::vertices).collect();
        let block_index: HashMap<Block, usize> = blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (b.clone(), i))
            .collect();

        // Candidates per block: PMCs Ω with S ⊂ Ω ⊆ S ∪ C, each with the
        // child blocks induced by the components of (S ∪ C) \ Ω. Blocks are
        // independent of each other, so with `threads > 1` the resolution
        // runs as chunked work-stealing pool tasks.
        let mut scratch = Scratch::default();
        let block_candidates: Vec<Vec<Candidate>> = if threads > 1 && blocks.len() > 1 {
            let chunk = blocks.len().div_ceil(threads * 4).max(1);
            let ranges: Vec<std::ops::Range<usize>> = (0..blocks.len())
                .step_by(chunk)
                .map(|start| start..(start + chunk).min(blocks.len()))
                .collect();
            let chunked: Vec<Vec<Vec<Candidate>>> = pool::scoped(threads, |p| {
                let tasks: Vec<_> = ranges
                    .into_iter()
                    .map(|range| {
                        let blocks = &blocks;
                        let pmcs = &pmcs;
                        let block_index = &block_index;
                        move |scratch: &mut Scratch| {
                            range
                                .map(|bi| {
                                    candidates_for_block(g, &blocks[bi], pmcs, block_index, scratch)
                                })
                                .collect::<Vec<_>>()
                        }
                    })
                    .collect();
                // These tasks run only workspace code (no user cost
                // function), so a panic here is a bug, not tenant input;
                // re-raise it on the calling thread with its message.
                p.run_batch(tasks)
                    .unwrap_or_else(|panic| std::panic::panic_any(panic.message))
            });
            chunked.into_iter().flatten().collect()
        } else {
            blocks
                .iter()
                .map(|b| candidates_for_block(g, b, &pmcs, &block_index, &mut scratch))
                .collect()
        };

        // Top-level candidates per connected component (few components, so
        // this stays sequential).
        let components = g.components();
        let mut top_candidates: Vec<Vec<Candidate>> = Vec::with_capacity(components.len());
        for comp in &components {
            let mut candidates = Vec::new();
            for (pi, omega) in pmcs.iter().enumerate() {
                if omega.is_empty() || !omega.is_subset_of(comp) {
                    continue;
                }
                if let Some(children) =
                    resolve_children(g, comp, omega, &block_index, None, &mut scratch)
                {
                    candidates.push(Candidate { pmc: pi, children });
                }
            }
            top_candidates.push(candidates);
        }

        Preprocessed {
            graph: g.clone(),
            minimal_separators,
            pmcs,
            blocks,
            block_vertices,
            block_candidates,
            components,
            top_candidates,
            width_bound,
        }
    }

    /// The graph this preprocessing belongs to.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The minimal separators found during preprocessing.
    pub fn minimal_separators(&self) -> &[VertexSet] {
        &self.minimal_separators
    }

    /// The potential maximal cliques found during preprocessing.
    pub fn pmcs(&self) -> &[VertexSet] {
        &self.pmcs
    }

    /// The full blocks, in the DP processing order.
    pub fn full_blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// The width bound used during preprocessing, if any.
    pub fn width_bound(&self) -> Option<usize> {
        self.width_bound
    }
}

/// Resolves all candidate PMCs of one full block — the unit of work the
/// threaded initialization distributes over the pool.
fn candidates_for_block(
    g: &Graph,
    block: &Block,
    pmcs: &[VertexSet],
    block_index: &HashMap<Block, usize>,
    scratch: &mut Scratch,
) -> Vec<Candidate> {
    let block_vertices = block.vertices();
    let mut candidates = Vec::new();
    for (pi, omega) in pmcs.iter().enumerate() {
        if !block.separator.is_proper_subset_of(omega) || !omega.is_subset_of(&block_vertices) {
            continue;
        }
        if let Some(children) =
            resolve_children(g, &block_vertices, omega, block_index, Some(block), scratch)
        {
            candidates.push(Candidate { pmc: pi, children });
        }
    }
    candidates
}

/// Resolves the child blocks of choosing `omega` inside `scope`: the
/// components of `scope \ omega` with their neighborhoods. Returns `None`
/// when some child block is not a known full block (which, per Theorems 5.3
/// and 5.4, does not happen for genuine PMCs — `None` simply drops the
/// candidate).
fn resolve_children(
    g: &Graph,
    scope: &VertexSet,
    omega: &VertexSet,
    block_index: &HashMap<Block, usize>,
    parent: Option<&Block>,
    scratch: &mut Scratch,
) -> Option<Vec<usize>> {
    let mut rest = scratch.take(scope.universe());
    rest.copy_from(scope);
    rest.difference_with(omega);
    let mut children = Vec::new();
    let mut resolved = true;
    for c in g.components_within(&rest) {
        let sep = g.neighborhood_of_set(&c).intersection(scope);
        let child = Block::new(sep, c);
        if let Some(parent) = parent {
            // Progress check: the child must be strictly smaller than the
            // parent block so the DP's processing order is respected.
            if child.size() >= parent.size() {
                resolved = false;
                break;
            }
        }
        match block_index.get(&child) {
            Some(&idx) => children.push(idx),
            None => {
                resolved = false;
                break;
            }
        }
    }
    scratch.recycle(rest);
    resolved.then_some(children)
}

/// The stored optimal solution of one block.
#[derive(Clone, Debug)]
struct BlockSolution {
    bags: Vec<VertexSet>,
    cost: CostValue,
}

/// Computes a minimum-cost minimal triangulation of the preprocessed graph
/// under the bag cost `cost` (`MinTriang⟨κ⟩(G)`).
///
/// Returns `None` only when the graph admits no triangulation within the
/// preprocessing restrictions — i.e. when a width bound was used and the
/// graph has no minimal triangulation of that width, or when every candidate
/// has infinite cost (all of them violate the constraints compiled into the
/// cost).
pub fn min_triangulation<K: BagCost + ?Sized>(
    pre: &Preprocessed,
    cost: &K,
) -> Option<Triangulation> {
    thread_local! {
        // The arena only pays off when it survives across invocations (the
        // bound on Scratch::recycle keeps it small); a fresh arena per call
        // would be strictly slower than plain clones.
        static SCRATCH: std::cell::RefCell<Scratch> = std::cell::RefCell::new(Scratch::default());
    }
    SCRATCH.with(|s| min_triangulation_in(pre, cost, &mut s.borrow_mut()))
}

/// [`min_triangulation`] with an explicit scratch arena.
///
/// The dynamic program assembles and discards many intermediate bag lists
/// (one per candidate improvement); this variant routes those `VertexSet`s
/// through `scratch` so repeated invocations — one per Lawler–Murty node in
/// the ranked engines — stop churning the allocator. The returned
/// [`Triangulation`] owns its sets and does not borrow the scratch.
pub fn min_triangulation_in<K: BagCost + ?Sized>(
    pre: &Preprocessed,
    cost: &K,
    scratch: &mut Scratch,
) -> Option<Triangulation> {
    let g = &pre.graph;
    if g.n() == 0 {
        return Some(Triangulation {
            graph: Graph::new(0),
            bags: Vec::new(),
            cost: cost.cost_of_bags(g, &VertexSet::empty(0), &[]),
        });
    }

    // Dynamic program over full blocks in ascending size order.
    let mut solutions: Vec<Option<BlockSolution>> = vec![None; pre.blocks.len()];
    for bi in 0..pre.blocks.len() {
        let scope = &pre.block_vertices[bi];
        let mut best: Option<BlockSolution> = None;
        for cand in &pre.block_candidates[bi] {
            let omega = &pre.pmcs[cand.pmc];
            let Some(children) = gather_children(pre, &solutions, &cand.children) else {
                continue;
            };
            let value = cost.combine(g, scope, omega, &children);
            if best.as_ref().is_none_or(|b| value < b.cost) {
                let bags = assemble_bags_in(&children, omega, scratch);
                if let Some(replaced) = best.replace(BlockSolution { bags, cost: value }) {
                    recycle_bags(scratch, replaced.bags);
                }
            }
        }
        solutions[bi] = best;
    }

    // Top level: per connected component, then combine.
    let mut all_bags: Vec<VertexSet> = Vec::new();
    for (ci, comp) in pre.components.iter().enumerate() {
        let mut best: Option<BlockSolution> = None;
        for cand in &pre.top_candidates[ci] {
            let omega = &pre.pmcs[cand.pmc];
            let Some(children) = gather_children(pre, &solutions, &cand.children) else {
                continue;
            };
            let value = cost.combine(g, comp, omega, &children);
            if best.as_ref().is_none_or(|b| value < b.cost) {
                let bags = assemble_bags_in(&children, omega, scratch);
                if let Some(replaced) = best.replace(BlockSolution { bags, cost: value }) {
                    recycle_bags(scratch, replaced.bags);
                }
            }
        }
        let comp_solution = best?;
        if comp_solution.cost.is_infinite() {
            return None;
        }
        all_bags.extend(comp_solution.bags);
    }

    // Materialize the triangulation and canonicalize its bags as the maximal
    // cliques of the chordal graph.
    let mut h = g.clone();
    for bag in &all_bags {
        h.saturate(bag);
    }
    // Everything the DP assembled is scratch material from here on.
    recycle_bags(scratch, all_bags);
    for sol in solutions.into_iter().flatten() {
        recycle_bags(scratch, sol.bags);
    }
    let bags = maximal_cliques_chordal(&h)
        .expect("saturating the bags of a block decomposition must give a chordal graph");
    let total_cost = cost.cost_of_bags(g, &g.vertex_set(), &bags);
    if total_cost.is_infinite() {
        return None;
    }
    Some(Triangulation {
        graph: h,
        bags,
        cost: total_cost,
    })
}

fn gather_children<'a>(
    pre: &'a Preprocessed,
    solutions: &'a [Option<BlockSolution>],
    child_indices: &[usize],
) -> Option<Vec<ChildSolution<'a>>> {
    let mut children = Vec::with_capacity(child_indices.len());
    for &ci in child_indices {
        let sol = solutions[ci].as_ref()?;
        children.push(ChildSolution {
            separator: &pre.blocks[ci].separator,
            vertices: &pre.block_vertices[ci],
            cost: sol.cost,
            bags: &sol.bags,
        });
    }
    Some(children)
}

/// Like cloning the child bags plus `omega` into a fresh list, but the
/// backing sets come from the arena.
fn assemble_bags_in(
    children: &[ChildSolution<'_>],
    omega: &VertexSet,
    scratch: &mut Scratch,
) -> Vec<VertexSet> {
    let mut bags: Vec<VertexSet> =
        Vec::with_capacity(1 + children.iter().map(|c| c.bags.len()).sum::<usize>());
    for c in children {
        for b in c.bags {
            let mut copy = scratch.take(b.universe());
            copy.copy_from(b);
            bags.push(copy);
        }
    }
    let mut top = scratch.take(omega.universe());
    top.copy_from(omega);
    bags.push(top);
    bags
}

fn recycle_bags(scratch: &mut Scratch, bags: Vec<VertexSet>) {
    for b in bags {
        scratch.recycle(b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{Constrained, Constraints, ExpBagSum, FillIn, Width, WidthThenFill};
    use mtr_chordal::verify::is_minimal_triangulation;
    use mtr_graph::paper_example_graph;

    fn cycle(n: u32) -> Graph {
        Graph::from_edges(n, &(0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>())
    }

    #[test]
    fn paper_example_width_and_fill_optima() {
        let g = paper_example_graph();
        let pre = Preprocessed::new(&g);
        assert_eq!(pre.minimal_separators().len(), 3);
        assert_eq!(pre.pmcs().len(), 6);
        assert_eq!(pre.full_blocks().len(), 7);

        // Width: the optimum is H2 (add {u,v}), width 2.
        let by_width = min_triangulation(&pre, &Width).unwrap();
        assert_eq!(by_width.cost, CostValue::from_usize(2));
        assert_eq!(by_width.width(), 2);
        assert!(is_minimal_triangulation(&g, &by_width.graph));

        // Fill-in: the optimum is also H2 with a single fill edge.
        let by_fill = min_triangulation(&pre, &FillIn).unwrap();
        assert_eq!(by_fill.cost, CostValue::from_usize(1));
        assert_eq!(by_fill.fill_in(&g), 1);
        assert!(by_fill.graph.has_edge(0, 1));
        assert!(is_minimal_triangulation(&g, &by_fill.graph));

        // The lexicographic cost agrees with width-first.
        let lex = min_triangulation(&pre, &WidthThenFill).unwrap();
        assert_eq!(lex.width(), 2);
        assert_eq!(lex.fill_in(&g), 1);
    }

    #[test]
    fn chordal_graph_is_returned_unchanged() {
        let path = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let pre = Preprocessed::new(&path);
        let t = min_triangulation(&pre, &FillIn).unwrap();
        assert_eq!(t.graph, path);
        assert_eq!(t.cost, CostValue::ZERO);
        let complete = Graph::complete(5);
        let pre_c = Preprocessed::new(&complete);
        let t_c = min_triangulation(&pre_c, &Width).unwrap();
        assert_eq!(t_c.graph, complete);
        assert_eq!(t_c.cost, CostValue::from_usize(4));
    }

    #[test]
    fn cycles_get_optimal_width_two() {
        for n in 4..9u32 {
            let c = cycle(n);
            let pre = Preprocessed::new(&c);
            let t = min_triangulation(&pre, &Width).unwrap();
            assert_eq!(t.width(), 2, "C{n} has treewidth 2");
            assert!(is_minimal_triangulation(&c, &t.graph));
            let t_fill = min_triangulation(&pre, &FillIn).unwrap();
            assert_eq!(t_fill.fill_in(&c), (n - 3) as usize);
        }
    }

    #[test]
    fn grid_treewidth() {
        // The k x k grid has treewidth k.
        for k in 2..4u32 {
            let idx = |r: u32, c: u32| r * k + c;
            let mut edges = Vec::new();
            for r in 0..k {
                for c in 0..k {
                    if c + 1 < k {
                        edges.push((idx(r, c), idx(r, c + 1)));
                    }
                    if r + 1 < k {
                        edges.push((idx(r, c), idx(r + 1, c)));
                    }
                }
            }
            let g = Graph::from_edges(k * k, &edges);
            let pre = Preprocessed::new(&g);
            let t = min_triangulation(&pre, &Width).unwrap();
            assert_eq!(t.width(), k as usize, "treewidth of the {k}x{k} grid");
            assert!(is_minimal_triangulation(&g, &t.graph));
        }
    }

    #[test]
    fn disconnected_graphs_are_handled_per_component() {
        // A C4 plus a disjoint triangle: optimal width is max(2, 2) = 2 and
        // optimal fill is 1 (one chord in the C4).
        let mut edges = vec![(0u32, 1u32), (1, 2), (2, 3), (3, 0)];
        edges.extend([(4, 5), (5, 6), (4, 6)]);
        let g = Graph::from_edges(7, &edges);
        let pre = Preprocessed::new(&g);
        let t = min_triangulation(&pre, &FillIn).unwrap();
        assert_eq!(t.fill_in(&g), 1);
        assert!(is_minimal_triangulation(&g, &t.graph));
        let w = min_triangulation(&pre, &Width).unwrap();
        assert_eq!(w.width(), 2);
    }

    #[test]
    fn exp_bag_sum_cost_optimum_is_minimal() {
        let g = paper_example_graph();
        let pre = Preprocessed::new(&g);
        let t = min_triangulation(&pre, &ExpBagSum).unwrap();
        assert!(is_minimal_triangulation(&g, &t.graph));
        // T2's bags (three triangles + one edge) cost 28 < T1's 36.
        assert_eq!(t.cost, CostValue::finite(28.0));
    }

    #[test]
    fn constrained_cost_forces_and_forbids_separators() {
        let g = paper_example_graph();
        let pre = Preprocessed::new(&g);
        let s1 = VertexSet::from_slice(6, &[3, 4, 5]);
        let s2 = VertexSet::from_slice(6, &[0, 1]);

        // Force S1: the only satisfying minimal triangulation is H1.
        let force_s1 = Constraints::new(vec![s1.clone()], vec![]);
        let k = Constrained::new(&FillIn, &force_s1);
        let t = min_triangulation(&pre, &k).unwrap();
        assert_eq!(t.fill_in(&g), 3);
        assert!(force_s1.satisfied_by_graph(&t.graph));

        // Forbid S2: again only H1 remains.
        let forbid_s2 = Constraints::new(vec![], vec![s2.clone()]);
        let k2 = Constrained::new(&FillIn, &forbid_s2);
        let t2 = min_triangulation(&pre, &k2).unwrap();
        assert_eq!(t2.fill_in(&g), 3);

        // Forbidding both S1 and S2 leaves no minimal triangulation at all:
        // every maximal parallel set contains one of them.
        let impossible = Constraints::new(vec![], vec![s1, s2]);
        let k3 = Constrained::new(&FillIn, &impossible);
        assert!(min_triangulation(&pre, &k3).is_none());
    }

    #[test]
    fn bounded_width_preprocessing() {
        let g = paper_example_graph();
        // Width bound 2 admits only H2.
        let pre2 = Preprocessed::new_bounded(&g, 2);
        assert_eq!(pre2.width_bound(), Some(2));
        let t = min_triangulation(&pre2, &FillIn).unwrap();
        assert_eq!(t.width(), 2);
        assert_eq!(t.fill_in(&g), 1);
        // Width bound 1 admits nothing (the graph has treewidth 2).
        let pre1 = Preprocessed::new_bounded(&g, 1);
        assert!(min_triangulation(&pre1, &FillIn).is_none());
        // Width bound 3 admits both; fill optimum is still 1.
        let pre3 = Preprocessed::new_bounded(&g, 3);
        let t3 = min_triangulation(&pre3, &FillIn).unwrap();
        assert_eq!(t3.fill_in(&g), 1);
    }

    #[test]
    fn threaded_preprocessing_matches_sequential() {
        use mtr_pmc::enumerate::potential_maximal_cliques;
        let cases = vec![
            paper_example_graph(),
            cycle(6),
            Graph::from_edges(7, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 4), (4, 5), (5, 6)]),
        ];
        for g in cases {
            let e = potential_maximal_cliques(&g);
            let sequential =
                Preprocessed::from_parts(&g, e.minimal_separators.clone(), e.pmcs.clone());
            let threaded =
                Preprocessed::from_parts_threaded(&g, e.minimal_separators, e.pmcs, None, 4);
            assert_eq!(sequential.full_blocks().len(), threaded.full_blocks().len());
            for cost in [&Width as &dyn BagCost, &FillIn] {
                let a = min_triangulation(&sequential, cost).unwrap();
                let b = min_triangulation(&threaded, cost).unwrap();
                assert_eq!(a.cost, b.cost);
                assert_eq!(a.graph, b.graph);
            }
        }
        // The bounded filter applies identically through the threaded path.
        let g = paper_example_graph();
        let e = potential_maximal_cliques(&g);
        let bounded =
            Preprocessed::from_parts_threaded(&g, e.minimal_separators, e.pmcs, Some(2), 2);
        assert_eq!(bounded.width_bound(), Some(2));
        let t = min_triangulation(&bounded, &FillIn).unwrap();
        assert_eq!(t.width(), 2);
    }

    #[test]
    fn single_vertices_and_empty_graphs() {
        let empty = Graph::new(0);
        let pre = Preprocessed::new(&empty);
        let t = min_triangulation(&pre, &Width).unwrap();
        assert!(t.bags.is_empty());

        let single = Graph::new(1);
        let pre1 = Preprocessed::new(&single);
        let t1 = min_triangulation(&pre1, &Width).unwrap();
        assert_eq!(t1.bags.len(), 1);
        assert_eq!(t1.width(), 0);

        let isolated = Graph::new(3);
        let pre3 = Preprocessed::new(&isolated);
        let t3 = min_triangulation(&pre3, &FillIn).unwrap();
        assert_eq!(t3.bags.len(), 3);
        assert_eq!(t3.cost, CostValue::ZERO);
    }
}
