//! `mtr-fault`: a deterministic, seeded failpoint registry for
//! chaos-testing the ranked-triangulations workspace.
//!
//! Production code declares **named failpoints** at the seams where real
//! systems fail — disk writes, disk reads, session execution, pool tasks —
//! by calling [`check`]:
//!
//! ```
//! fn write_payload() -> Result<(), mtr_fault::FaultError> {
//!     mtr_fault::check("demo.disk.write")?; // no-op unless armed
//!     // ... the real write ...
//!     Ok(())
//! }
//! ```
//!
//! With no faults configured (the default, and the only state production
//! ever runs in) every [`check`] is a **single relaxed atomic load** and
//! an untaken branch — the same zero-cost gate pattern as
//! `mtr_obs::Level`. No locks, no allocation, no clock reads.
//! `crates/bench/benches/fault_overhead.rs` pins this.
//!
//! Tests and the `--fault <spec>` CLI flag arm points with an
//! [`Outcome`]:
//!
//! * `error` — [`check`] returns [`FaultError`], which the call site maps
//!   into its own typed error (an `io::Error` for the disk cache, an
//!   `EnumerationError` for the pool);
//! * `panic` — [`check`] panics with a recognizable message, exercising
//!   `catch_unwind` isolation paths;
//! * `delay:<ms>` — [`check`] sleeps, then succeeds, exercising timeout
//!   and watchdog paths;
//! * `fail:<k>` — the first `k` evaluations return [`FaultError`], then
//!   the point succeeds forever, exercising retry convergence.
//!
//! An outcome may carry a trigger probability (`error%25`), drawn from a
//! seeded xorshift generator ([`set_seed`]) so probabilistic chaos runs
//! are **reproducible**: same seed, same spec, same traffic order — same
//! faults.
//!
//! The registry is process-global, like the `mtr-obs` level: tests that
//! arm faults must serialize with each other and [`clear_all`] when done.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Fast-path gate: `true` only while at least one failpoint is armed.
/// Kept in lockstep with the registry map so the disabled path never
/// touches the mutex.
static ARMED: AtomicBool = AtomicBool::new(false);

/// What an armed failpoint injects when evaluated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Every evaluation returns a [`FaultError`].
    Error,
    /// Every evaluation panics (message contains the point name and
    /// `"injected panic"`).
    Panic,
    /// Every evaluation sleeps this many milliseconds, then succeeds.
    Delay(u64),
    /// The first `k` evaluations return [`FaultError`]; later ones
    /// succeed. `fail:0` is equivalent to an unarmed point.
    FailFirstK(u64),
}

/// The typed error an `error`/`fail:<k>` failpoint injects.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultError {
    /// Name of the failpoint that fired.
    pub point: String,
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected fault at failpoint '{}'", self.point)
    }
}

impl std::error::Error for FaultError {}

/// One armed point: its outcome, optional trigger probability, and
/// remaining-failure budget for `fail:<k>`.
#[derive(Clone, Debug)]
struct Point {
    outcome: Outcome,
    /// Trigger probability in percent (1..=100). 100 = always.
    percent: u8,
    /// Remaining injected failures for [`Outcome::FailFirstK`].
    remaining: u64,
    /// Times this point actually injected a fault (error, panic, or
    /// delay) — not mere evaluations.
    trips: u64,
}

struct Registry {
    points: HashMap<String, Point>,
    /// xorshift64 state for probabilistic triggers; never zero.
    rng: u64,
}

fn registry() -> MutexGuard<'static, Registry> {
    static REG: OnceLock<Mutex<Registry>> = OnceLock::new();
    REG.get_or_init(|| {
        Mutex::new(Registry {
            points: HashMap::new(),
            rng: 0x9e37_79b9_7f4a_7c15,
        })
    })
    .lock()
    // A panicking failpoint never unwinds while holding this lock
    // (the panic happens after the guard is dropped), but a chaos test
    // asserting inside a configure/clear window might; the map is
    // always internally consistent, so recover.
    .unwrap_or_else(|e| e.into_inner())
}

impl Registry {
    /// xorshift64 step; deterministic for a given seed.
    fn next_u64(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }
}

/// `true` while at least one failpoint is armed. This is the single
/// relaxed load the disabled fast path performs.
#[inline]
pub fn enabled() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Evaluates the named failpoint.
///
/// Unarmed (the production state): one relaxed atomic load, returns
/// `Ok(())`. Armed: injects the configured [`Outcome`] — returns
/// `Err(FaultError)`, panics, or sleeps then returns `Ok(())`.
#[inline]
pub fn check(name: &str) -> Result<(), FaultError> {
    if !enabled() {
        return Ok(());
    }
    check_armed(name)
}

/// Slow path, split out so the armed branch never inlines into hot loops.
#[cold]
fn check_armed(name: &str) -> Result<(), FaultError> {
    let action = {
        let mut reg = registry();
        let Some(point) = reg.points.get(name).cloned() else {
            return Ok(());
        };
        if point.percent < 100 {
            let draw = (reg.next_u64() % 100) as u8;
            if draw >= point.percent {
                return Ok(());
            }
        }
        let point = reg
            .points
            .get_mut(name)
            .expect("point present: map unchanged since lookup");
        match point.outcome {
            Outcome::Error => {
                point.trips += 1;
                Action::Error
            }
            Outcome::Panic => {
                point.trips += 1;
                Action::Panic
            }
            Outcome::Delay(ms) => {
                point.trips += 1;
                Action::Delay(ms)
            }
            Outcome::FailFirstK(_) => {
                if point.remaining > 0 {
                    point.remaining -= 1;
                    point.trips += 1;
                    Action::Error
                } else {
                    Action::Proceed
                }
            }
        }
    }; // registry lock released before we sleep or panic
    match action {
        Action::Proceed => Ok(()),
        Action::Error => Err(FaultError { point: name.into() }),
        Action::Delay(ms) => {
            std::thread::sleep(Duration::from_millis(ms));
            Ok(())
        }
        Action::Panic => panic!("failpoint '{name}': injected panic"),
    }
}

/// What [`check_armed`] decided under the lock, executed after release.
enum Action {
    Proceed,
    Error,
    Delay(u64),
    Panic,
}

/// Arms `name` with `outcome`, triggering on every evaluation.
pub fn configure(name: &str, outcome: Outcome) {
    configure_with(name, outcome, 100);
}

/// Arms `name` with `outcome`, triggering on `percent`% of evaluations
/// (drawn from the seeded generator; clamped to 1..=100).
pub fn configure_with(name: &str, outcome: Outcome, percent: u8) {
    let percent = percent.clamp(1, 100);
    let remaining = match outcome {
        Outcome::FailFirstK(k) => k,
        _ => 0,
    };
    let mut reg = registry();
    reg.points.insert(
        name.to_string(),
        Point {
            outcome,
            percent,
            remaining,
            trips: 0,
        },
    );
    ARMED.store(true, Ordering::Relaxed);
}

/// Disarms one failpoint. The global gate stays armed while any other
/// point remains.
pub fn clear(name: &str) {
    let mut reg = registry();
    reg.points.remove(name);
    if reg.points.is_empty() {
        ARMED.store(false, Ordering::Relaxed);
    }
}

/// Disarms every failpoint and restores the zero-cost disabled state.
pub fn clear_all() {
    let mut reg = registry();
    reg.points.clear();
    ARMED.store(false, Ordering::Relaxed);
}

/// Reseeds the probabilistic-trigger generator. Zero is mapped to a
/// fixed non-zero constant (xorshift has no zero state).
pub fn set_seed(seed: u64) {
    let mut reg = registry();
    reg.rng = if seed == 0 {
        0x9e37_79b9_7f4a_7c15
    } else {
        seed
    };
}

/// How many times `name` actually injected a fault (not evaluations
/// that passed). Zero for unarmed points.
pub fn trips(name: &str) -> u64 {
    registry().points.get(name).map_or(0, |p| p.trips)
}

/// Names of all currently armed failpoints, sorted.
pub fn armed_points() -> Vec<String> {
    let reg = registry();
    let mut names: Vec<String> = reg.points.keys().cloned().collect();
    names.sort();
    names
}

/// A malformed `--fault` spec, with a message suitable for CLI usage
/// errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecError(pub String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad fault spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

/// Parses and applies a `--fault` spec string.
///
/// Grammar (comma-separated entries):
///
/// ```text
/// spec    := entry (',' entry)*
/// entry   := 'seed=' u64
///          | point '=' outcome ('%' percent)?
/// outcome := 'error' | 'panic' | 'delay:' ms | 'fail:' k
/// ```
///
/// Examples: `cache.disk.write=error`, `pool.task=panic`,
/// `serve.session.run=delay:50`, `cache.disk.read=fail:3`,
/// `seed=42,cache.disk.write=error%25`.
pub fn apply_spec(spec: &str) -> Result<(), SpecError> {
    // Parse fully before arming anything: a bad entry must not leave a
    // half-applied spec behind.
    let mut seed: Option<u64> = None;
    let mut parsed: Vec<(String, Outcome, u8)> = Vec::new();
    for entry in spec.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (name, value) = entry
            .split_once('=')
            .ok_or_else(|| SpecError(format!("'{entry}' is not 'point=outcome'")))?;
        let (name, value) = (name.trim(), value.trim());
        if name.is_empty() {
            return Err(SpecError(format!("'{entry}' has an empty point name")));
        }
        if name == "seed" {
            let s: u64 = value
                .parse()
                .map_err(|_| SpecError(format!("seed '{value}' is not a u64")))?;
            seed = Some(s);
            continue;
        }
        let (value, percent) = match value.split_once('%') {
            Some((v, p)) => {
                let pct: u8 = p
                    .parse()
                    .ok()
                    .filter(|pct| (1..=100).contains(pct))
                    .ok_or_else(|| {
                        SpecError(format!("percent '{p}' must be an integer in 1..=100"))
                    })?;
                (v.trim(), pct)
            }
            None => (value, 100),
        };
        let outcome = match value.split_once(':') {
            None => match value {
                "error" => Outcome::Error,
                "panic" => Outcome::Panic,
                other => {
                    return Err(SpecError(format!(
                        "unknown outcome '{other}' (expected error, panic, delay:<ms>, fail:<k>)"
                    )))
                }
            },
            Some(("delay", ms)) => {
                let ms: u64 = ms
                    .parse()
                    .map_err(|_| SpecError(format!("delay '{ms}' is not a u64 of milliseconds")))?;
                Outcome::Delay(ms)
            }
            Some(("fail", k)) => {
                let k: u64 = k
                    .parse()
                    .map_err(|_| SpecError(format!("fail count '{k}' is not a u64")))?;
                Outcome::FailFirstK(k)
            }
            Some((other, _)) => {
                return Err(SpecError(format!(
                    "unknown outcome '{other}' (expected error, panic, delay:<ms>, fail:<k>)"
                )))
            }
        };
        parsed.push((name.to_string(), outcome, percent));
    }
    if parsed.is_empty() && seed.is_none() {
        return Err(SpecError("spec is empty".into()));
    }
    if let Some(s) = seed {
        set_seed(s);
    }
    for (name, outcome, percent) in parsed {
        configure_with(&name, outcome, percent);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global, so tests serialize on one lock
    /// (same idiom as `mtr-obs`).
    fn guard() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn unarmed_check_is_ok_and_gate_is_cold() {
        let _g = guard();
        clear_all();
        assert!(!enabled());
        assert!(check("test.nothing").is_ok());
        assert_eq!(trips("test.nothing"), 0);
    }

    #[test]
    fn error_outcome_returns_typed_fault() {
        let _g = guard();
        clear_all();
        configure("test.err", Outcome::Error);
        assert!(enabled());
        let e = check("test.err").unwrap_err();
        assert_eq!(e.point, "test.err");
        assert!(e.to_string().contains("test.err"));
        // Other points are unaffected.
        assert!(check("test.other").is_ok());
        assert_eq!(trips("test.err"), 1);
        clear_all();
        assert!(check("test.err").is_ok());
    }

    #[test]
    fn panic_outcome_panics_with_point_name() {
        let _g = guard();
        clear_all();
        configure("test.boom", Outcome::Panic);
        let caught = std::panic::catch_unwind(|| check("test.boom"));
        clear_all();
        let msg = *caught
            .expect_err("must panic")
            .downcast::<String>()
            .expect("panic payload is a String");
        assert!(msg.contains("test.boom") && msg.contains("injected panic"));
    }

    #[test]
    fn delay_outcome_sleeps_then_succeeds() {
        let _g = guard();
        clear_all();
        configure("test.slow", Outcome::Delay(20));
        let t0 = std::time::Instant::now();
        assert!(check("test.slow").is_ok());
        assert!(t0.elapsed() >= Duration::from_millis(20));
        assert_eq!(trips("test.slow"), 1);
        clear_all();
    }

    #[test]
    fn fail_first_k_then_succeeds_forever() {
        let _g = guard();
        clear_all();
        configure("test.flaky", Outcome::FailFirstK(3));
        for _ in 0..3 {
            assert!(check("test.flaky").is_err());
        }
        for _ in 0..10 {
            assert!(check("test.flaky").is_ok());
        }
        assert_eq!(trips("test.flaky"), 3);
        clear_all();
    }

    #[test]
    fn percent_triggers_are_seeded_and_reproducible() {
        let _g = guard();
        clear_all();
        let run = || {
            set_seed(42);
            configure_with("test.maybe", Outcome::Error, 30);
            let pattern: Vec<bool> = (0..64).map(|_| check("test.maybe").is_err()).collect();
            clear_all();
            pattern
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed must reproduce the same trigger pattern");
        let fired = a.iter().filter(|&&f| f).count();
        assert!(
            fired > 0 && fired < 64,
            "30% trigger should fire sometimes but not always (fired {fired}/64)"
        );
    }

    #[test]
    fn clear_single_point_keeps_others_armed() {
        let _g = guard();
        clear_all();
        configure("test.a", Outcome::Error);
        configure("test.b", Outcome::Error);
        clear("test.a");
        assert!(enabled(), "one point still armed");
        assert!(check("test.a").is_ok());
        assert!(check("test.b").is_err());
        clear("test.b");
        assert!(!enabled(), "last clear disarms the gate");
    }

    #[test]
    fn spec_round_trip() {
        let _g = guard();
        clear_all();
        apply_spec("seed=7, cache.w=error%50 ,pool.t=panic,s.run=delay:5,c.r=fail:2")
            .expect("valid spec");
        assert_eq!(
            armed_points(),
            vec![
                "c.r".to_string(),
                "cache.w".into(),
                "pool.t".into(),
                "s.run".into()
            ]
        );
        assert!(check("c.r").is_err());
        assert!(check("c.r").is_err());
        assert!(check("c.r").is_ok(), "fail:2 exhausted");
        clear_all();
    }

    #[test]
    fn spec_errors_are_descriptive_and_atomic() {
        let _g = guard();
        clear_all();
        for (spec, needle) in [
            ("", "empty"),
            ("no-equals", "not 'point=outcome'"),
            ("p=warp", "unknown outcome"),
            ("p=delay:soon", "not a u64"),
            ("p=fail:-1", "not a u64"),
            ("p=error%0", "1..=100"),
            ("p=error%101", "1..=100"),
            ("seed=abc", "not a u64"),
            ("=error", "empty point name"),
            ("good=error,bad=nope", "unknown outcome"),
        ] {
            let err = apply_spec(spec).expect_err(spec);
            assert!(
                err.to_string().contains(needle),
                "spec {spec:?}: error {err} should mention {needle:?}"
            );
        }
        // The trailing case had one valid entry before the bad one:
        // nothing may have been armed.
        assert!(!enabled(), "failed spec must not arm any point");
    }
}
