//! Span tracing: timed scopes recorded into a bounded ring buffer and
//! forwarded to pluggable sinks.
//!
//! A [`span`] is an RAII guard: created when tracing is enabled, it
//! captures a start instant and optional string attributes, and on drop
//! appends one [`SpanRecord`] to the in-memory ring (capacity
//! [`RING_CAPACITY`], oldest evicted first) and to every installed
//! [`SpanSink`]. With tracing disabled the guard is inert — no clock
//! read, no allocation. Timestamps are nanoseconds relative to the
//! process's first trace use, so JSONL files diff cleanly across runs.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Spans kept in memory for [`recent_spans`]; older records are evicted
/// (sinks, when installed, still saw them).
pub const RING_CAPACITY: usize = 4096;

/// One finished span or point event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// `"span"` for timed scopes, `"event"` for point events.
    pub kind: &'static str,
    /// The span name (dotted, lowercase: `serve.request`).
    pub name: String,
    /// Start offset in nanoseconds since the process's trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 for events).
    pub dur_ns: u64,
    /// Attribute key/value pairs, in attachment order.
    pub attrs: Vec<(String, String)>,
}

impl SpanRecord {
    /// Renders the record as one JSON line (no trailing newline), the
    /// format `JsonlSink` writes and `docs/OBSERVABILITY.md` documents.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(80);
        let _ = write!(
            out,
            "{{\"kind\":\"{}\",\"name\":\"{}\",\"start_ns\":{},\"dur_ns\":{}",
            self.kind,
            escape(&self.name),
            self.start_ns,
            self.dur_ns
        );
        if !self.attrs.is_empty() {
            out.push_str(",\"attrs\":{");
            for (i, (k, v)) in self.attrs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":\"{}\"", escape(k), escape(v));
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

/// Escapes a string for a JSON string literal (quotes not included).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A destination for finished spans. Implementations must be fast or
/// buffered: `record` runs on the instrumented thread.
pub trait SpanSink: Send + Sync {
    /// Called once per finished span/event while tracing is enabled.
    fn record(&self, span: &SpanRecord);
}

fn ring() -> &'static Mutex<VecDeque<SpanRecord>> {
    static RING: OnceLock<Mutex<VecDeque<SpanRecord>>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(VecDeque::with_capacity(64)))
}

fn sinks() -> &'static Mutex<Vec<Arc<dyn SpanSink>>> {
    static SINKS: OnceLock<Mutex<Vec<Arc<dyn SpanSink>>>> = OnceLock::new();
    SINKS.get_or_init(|| Mutex::new(Vec::new()))
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn emit(record: SpanRecord) {
    {
        let mut ring = ring().lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() >= RING_CAPACITY {
            ring.pop_front();
        }
        ring.push_back(record.clone());
    }
    let sinks = sinks().lock().unwrap_or_else(|e| e.into_inner());
    for sink in sinks.iter() {
        sink.record(&record);
    }
}

/// Installs a sink; every subsequently finished span is forwarded to it
/// (in addition to the ring buffer).
pub fn install_sink(sink: Arc<dyn SpanSink>) {
    sinks().lock().unwrap_or_else(|e| e.into_inner()).push(sink);
}

/// Removes every installed sink (the ring buffer keeps recording).
pub fn clear_sinks() {
    sinks().lock().unwrap_or_else(|e| e.into_inner()).clear();
}

/// The ring buffer's current contents, oldest first.
pub fn recent_spans() -> Vec<SpanRecord> {
    ring()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .cloned()
        .collect()
}

pub(crate) fn clear_ring() {
    ring().lock().unwrap_or_else(|e| e.into_inner()).clear();
}

struct ActiveSpan {
    name: &'static str,
    started: Instant,
    attrs: Vec<(String, String)>,
}

/// RAII guard for one timed scope; records on drop. Inert (a `None`)
/// when tracing was disabled at creation.
pub struct SpanGuard(Option<ActiveSpan>);

impl SpanGuard {
    /// Whether this guard will record (tracing was enabled at creation).
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }

    /// Attaches a key/value attribute; a no-op on inert guards, so
    /// callers can attach unconditionally without paying for the value
    /// conversion when disabled (pass `&str`/`String` already at hand,
    /// or guard expensive formatting with [`SpanGuard::is_active`]).
    pub fn attr(&mut self, key: &str, value: impl Into<String>) {
        if let Some(active) = &mut self.0 {
            active.attrs.push((key.to_string(), value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(active) = self.0.take() {
            let start_ns =
                u64::try_from(active.started.saturating_duration_since(epoch()).as_nanos())
                    .unwrap_or(u64::MAX);
            let dur_ns = u64::try_from(active.started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            emit(SpanRecord {
                kind: "span",
                name: active.name.to_string(),
                start_ns,
                dur_ns,
                attrs: active.attrs,
            });
        }
    }
}

/// Opens a span named `name`. With tracing disabled this is one relaxed
/// atomic load and an inert guard.
pub fn span(name: &'static str) -> SpanGuard {
    if !crate::trace_enabled() {
        return SpanGuard(None);
    }
    let _ = epoch(); // pin the epoch no later than the first span start
    SpanGuard(Some(ActiveSpan {
        name,
        started: Instant::now(),
        attrs: Vec::new(),
    }))
}

/// Records a point event (a zero-duration record) when tracing is
/// enabled. `attrs` is only built by the caller if it chooses; prefer
/// checking [`trace_enabled`](crate::trace_enabled) before formatting
/// expensive values.
pub fn event(name: &'static str, attrs: Vec<(&'static str, String)>) {
    if !crate::trace_enabled() {
        return;
    }
    let start_ns = u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX);
    emit(SpanRecord {
        kind: "event",
        name: name.to_string(),
        start_ns,
        dur_ns: 0,
        attrs: attrs.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
    });
}

/// A sink appending one JSON line per span to a file (buffered; flushed
/// on [`JsonlSink::flush`] and on drop). Write errors after creation are
/// swallowed — tracing must never fail the traced work.
pub struct JsonlSink {
    file: Mutex<std::io::BufWriter<std::fs::File>>,
}

impl JsonlSink {
    /// Creates (truncating) `path` and returns the sink ready to
    /// [`install_sink`].
    pub fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<Arc<JsonlSink>> {
        let file = std::fs::File::create(path)?;
        Ok(Arc::new(JsonlSink {
            file: Mutex::new(std::io::BufWriter::new(file)),
        }))
    }

    /// Flushes buffered lines to the file.
    pub fn flush(&self) {
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        let _ = file.flush();
    }
}

impl SpanSink for JsonlSink {
    fn record(&self, span: &SpanRecord) {
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        let _ = writeln!(file, "{}", span.to_jsonl());
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// A sink writing one JSON line per span to stderr.
pub struct StderrSink;

impl SpanSink for StderrSink {
    fn record(&self, span: &SpanRecord) {
        eprintln!("{}", span.to_jsonl());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_rendering_escapes_and_orders_fields() {
        let record = SpanRecord {
            kind: "span",
            name: "test.\"quoted\"".into(),
            start_ns: 5,
            dur_ns: 17,
            attrs: vec![("tenant".into(), "a\nb".into())],
        };
        assert_eq!(
            record.to_jsonl(),
            "{\"kind\":\"span\",\"name\":\"test.\\\"quoted\\\"\",\"start_ns\":5,\"dur_ns\":17,\"attrs\":{\"tenant\":\"a\\nb\"}}"
        );
        let bare = SpanRecord {
            kind: "event",
            name: "tick".into(),
            start_ns: 0,
            dur_ns: 0,
            attrs: vec![],
        };
        assert_eq!(
            bare.to_jsonl(),
            "{\"kind\":\"event\",\"name\":\"tick\",\"start_ns\":0,\"dur_ns\":0}"
        );
    }

    #[test]
    fn ring_is_bounded() {
        // Exercise the ring directly (emit is level-independent); the
        // level-gated entry points are covered in lib.rs tests.
        clear_ring();
        for i in 0..(RING_CAPACITY + 10) {
            emit(SpanRecord {
                kind: "event",
                name: format!("tick.{i}"),
                start_ns: i as u64,
                dur_ns: 0,
                attrs: vec![],
            });
        }
        let spans = recent_spans();
        assert_eq!(spans.len(), RING_CAPACITY);
        assert_eq!(spans[0].name, "tick.10", "oldest evicted first");
        clear_ring();
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_span() {
        let path = std::env::temp_dir().join(format!("mtr_obs_sink_{}.jsonl", std::process::id()));
        let sink = JsonlSink::create(&path).expect("create sink");
        sink.record(&SpanRecord {
            kind: "span",
            name: "a".into(),
            start_ns: 1,
            dur_ns: 2,
            attrs: vec![],
        });
        sink.record(&SpanRecord {
            kind: "event",
            name: "b".into(),
            start_ns: 3,
            dur_ns: 0,
            attrs: vec![("k".into(), "v".into())],
        });
        sink.flush();
        let text = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"name\":\"a\""));
        assert!(lines[1].contains("\"attrs\":{\"k\":\"v\"}"));
        std::fs::remove_file(&path).ok();
    }
}
