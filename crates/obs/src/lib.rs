//! `mtr-obs`: a zero-dependency metrics registry and span tracer for the
//! ranked-triangulations workspace.
//!
//! The workspace is hermetic (no crates.io) and forbids `unsafe`, so this
//! crate hand-rolls the small observability surface the engines need, the
//! way `mtr-serve` hand-rolls its JSON reader and event loop:
//!
//! * a process-wide **metrics registry** of named counters, gauges, and
//!   log-bucketed histograms, all plain `std::sync::atomic` cells;
//! * lightweight **span tracing** with a bounded in-memory ring buffer
//!   and pluggable sinks (JSONL file, stderr) for offline analysis.
//!
//! Everything is gated on one global [`Level`] stored in an `AtomicU8`:
//! with instrumentation [`Level::Off`] (the default) every hot-path hook
//! is a **single relaxed atomic load** and an untaken branch — no clock
//! reads, no allocation, no locks — so the library can stay instrumented
//! permanently without taxing uninstrumented runs. [`Level::Metrics`]
//! activates the counters/gauges/histograms; [`Level::Trace`] additionally
//! records spans.
//!
//! ```
//! use mtr_obs as obs;
//!
//! obs::set_level(obs::Level::Metrics);
//! let results = obs::counter("demo.results");
//! results.add(3);
//! let delay = obs::histogram("demo.delay_ns");
//! delay.record(1500);
//! let snap = obs::snapshot();
//! assert!(snap.iter().any(|m| m.name == "demo.results"));
//! obs::set_level(obs::Level::Off);
//! ```
//!
//! Neutrality is a hard contract: enabling any level must never change
//! what an enumeration computes — only record what it did.
//! `tests/observability_neutrality.rs` in the workspace root pins this.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod registry;
mod trace;

pub use registry::{
    counter, counter_value, gauge, histogram, reset, snapshot, Counter, Gauge, Histogram,
    HistogramSnapshot, MetricSnapshot, MetricValue,
};
pub use trace::{
    clear_sinks, event, install_sink, recent_spans, span, JsonlSink, SpanGuard, SpanRecord,
    SpanSink, StderrSink, RING_CAPACITY,
};

use std::sync::atomic::{AtomicU8, Ordering};
use std::time::Instant;

/// How much the process records. Stored globally; see [`set_level`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Nothing is recorded; every hook is one relaxed atomic load.
    Off = 0,
    /// Counters, gauges, and histograms are live; spans are not.
    Metrics = 1,
    /// Metrics plus span tracing (ring buffer and installed sinks).
    Trace = 2,
}

static LEVEL: AtomicU8 = AtomicU8::new(0);

/// Sets the process-wide instrumentation level.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Raises the level to at least `level`, never lowering it — the form
/// long-lived components (the `mtr serve` daemon) use so they cannot
/// accidentally disable a trace the operator asked for.
pub fn raise_level(level: Level) {
    LEVEL.fetch_max(level as u8, Ordering::Relaxed);
}

/// The current instrumentation level.
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Off,
        1 => Level::Metrics,
        _ => Level::Trace,
    }
}

/// `true` when counters/gauges/histograms are live. This is the single
/// relaxed load every metric hook performs first.
#[inline]
pub fn metrics_enabled() -> bool {
    LEVEL.load(Ordering::Relaxed) >= Level::Metrics as u8
}

/// `true` when span tracing is live.
#[inline]
pub fn trace_enabled() -> bool {
    LEVEL.load(Ordering::Relaxed) >= Level::Trace as u8
}

/// Reads the clock only when metrics are enabled: `None` is the disabled
/// fast path (no `Instant::now` call). Pair with
/// [`Histogram::record_elapsed`].
#[inline]
pub fn clock() -> Option<Instant> {
    if metrics_enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry and level are process-global, so the crate's tests
    /// serialize on one lock (they run on separate threads otherwise).
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_level_records_nothing() {
        let _g = guard();
        set_level(Level::Off);
        reset();
        let c = counter("test.disabled.counter");
        c.add(5);
        assert_eq!(c.get(), 0, "Off must not count");
        let h = histogram("test.disabled.hist");
        h.record(123);
        assert_eq!(h.snapshot().count, 0, "Off must not record");
        let s = span("test.disabled.span");
        assert!(!s.is_active());
        drop(s);
        assert!(recent_spans().is_empty());
    }

    #[test]
    fn metrics_level_counts_but_does_not_trace() {
        let _g = guard();
        set_level(Level::Metrics);
        reset();
        let c = counter("test.metrics.counter");
        c.add(2);
        c.add(3);
        assert_eq!(c.get(), 5);
        assert_eq!(counter_value("test.metrics.counter"), Some(5));
        let g = gauge("test.metrics.gauge");
        g.set(7);
        g.add(-2);
        assert_eq!(g.get(), 5);
        let s = span("test.metrics.span");
        assert!(!s.is_active(), "Metrics level records no spans");
        drop(s);
        assert!(recent_spans().is_empty());
        set_level(Level::Off);
    }

    #[test]
    fn trace_level_records_spans_into_the_ring() {
        let _g = guard();
        set_level(Level::Trace);
        reset();
        {
            let mut s = span("test.trace.work");
            s.attr("tenant", "t-1");
        }
        event("test.trace.tick", vec![("n", "3".into())]);
        let spans = recent_spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "test.trace.work");
        assert_eq!(spans[0].kind, "span");
        assert_eq!(spans[0].attrs, vec![("tenant".into(), "t-1".into())]);
        assert_eq!(spans[1].kind, "event");
        assert_eq!(spans[1].dur_ns, 0);
        set_level(Level::Off);
    }

    #[test]
    fn level_raise_never_lowers() {
        let _g = guard();
        set_level(Level::Off);
        raise_level(Level::Metrics);
        assert_eq!(level(), Level::Metrics);
        raise_level(Level::Off);
        assert_eq!(level(), Level::Metrics, "raise must not lower");
        set_level(Level::Off);
        assert_eq!(level(), Level::Off, "set still lowers explicitly");
    }

    #[test]
    fn clock_is_none_when_disabled() {
        let _g = guard();
        set_level(Level::Off);
        assert!(clock().is_none());
        set_level(Level::Metrics);
        assert!(clock().is_some());
        set_level(Level::Off);
    }
}
