//! The process-wide metrics registry: named counters, gauges, and
//! log-bucketed histograms.
//!
//! Metrics are created on first use ([`counter`] / [`gauge`] /
//! [`histogram`]) and live for the process; handles are cheap `Arc`
//! clones of the registered atomic cells, so call sites can cache one in
//! a `OnceLock` and pay a name lookup only once. Every mutation checks
//! [`metrics_enabled`](crate::metrics_enabled) first — with
//! instrumentation off the mutation is one relaxed load and a return.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// A monotone event counter.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` when metrics are enabled; a relaxed load and return
    /// otherwise.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::metrics_enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Shorthand for `add(1)`.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current count (reads regardless of level).
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (queue depth, in-flight count).
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the gauge when metrics are enabled.
    #[inline]
    pub fn set(&self, v: i64) {
        if crate::metrics_enabled() {
            self.0.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `delta` (may be negative) when metrics are enabled.
    #[inline]
    pub fn add(&self, delta: i64) {
        if crate::metrics_enabled() {
            self.0.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// The current value (reads regardless of level).
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Bucket count of every histogram: power-of-two buckets covering the
/// full `u64` range (bucket `i` holds values in `[2^(i-1), 2^i)`, bucket
/// 0 holds zero), so nanosecond durations from sub-microsecond to hours
/// land in distinct buckets without configuration.
pub const HISTOGRAM_BUCKETS: usize = 64;

#[derive(Debug)]
struct HistogramCells {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistogramCells {
    fn new() -> Self {
        HistogramCells {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Index of the power-of-two bucket for `v`.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the last).
fn bucket_le(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A log-bucketed histogram of `u64` samples (typically nanoseconds).
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCells>);

impl Histogram {
    /// Records one sample when metrics are enabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if crate::metrics_enabled() {
            let cells = &self.0;
            cells.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
            cells.count.fetch_add(1, Ordering::Relaxed);
            cells.sum.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Records the nanoseconds elapsed since `started`, if it was taken —
    /// the companion of [`clock`](crate::clock), so the disabled path
    /// never reads the clock at all.
    #[inline]
    pub fn record_elapsed(&self, started: Option<Instant>) {
        if let Some(at) = started {
            self.record(u64::try_from(at.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
    }

    /// A consistent-enough snapshot of the cells (buckets are read one by
    /// one; concurrent recording may skew `count` by in-flight samples).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let cells = &self.0;
        let buckets = cells
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((bucket_le(i), n))
            })
            .collect();
        HistogramSnapshot {
            count: cells.count.load(Ordering::Relaxed),
            sum: cells.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// The observable state of one [`Histogram`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (wraps past `u64::MAX`).
    pub sum: u64,
    /// Non-empty buckets as `(inclusive upper bound, count)` pairs, in
    /// increasing bound order.
    pub buckets: Vec<(u64, u64)>,
}

/// One registered metric at snapshot time.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricSnapshot {
    /// The registered name.
    pub name: String,
    /// The value, by kind.
    pub value: MetricValue,
}

/// The value of one metric in a [`snapshot`].
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// A [`Counter`]'s count.
    Counter(u64),
    /// A [`Gauge`]'s value.
    Gauge(i64),
    /// A [`Histogram`]'s cells.
    Histogram(HistogramSnapshot),
}

enum Metric {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<HistogramCells>),
}

fn registry() -> &'static Mutex<BTreeMap<String, Metric>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, Metric>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn lock() -> std::sync::MutexGuard<'static, BTreeMap<String, Metric>> {
    registry().lock().unwrap_or_else(|e| e.into_inner())
}

/// The counter registered under `name`, created on first use. Asking for
/// a name registered as a different kind returns a detached cell (a
/// registry is not worth panicking over); kinds per name should be
/// consistent.
pub fn counter(name: &str) -> Counter {
    let mut map = lock();
    match map
        .entry(name.to_string())
        .or_insert_with(|| Metric::Counter(Arc::new(AtomicU64::new(0))))
    {
        Metric::Counter(cell) => Counter(cell.clone()),
        _ => {
            debug_assert!(false, "metric {name} registered as a different kind");
            Counter(Arc::new(AtomicU64::new(0)))
        }
    }
}

/// The gauge registered under `name`, created on first use.
pub fn gauge(name: &str) -> Gauge {
    let mut map = lock();
    match map
        .entry(name.to_string())
        .or_insert_with(|| Metric::Gauge(Arc::new(AtomicI64::new(0))))
    {
        Metric::Gauge(cell) => Gauge(cell.clone()),
        _ => {
            debug_assert!(false, "metric {name} registered as a different kind");
            Gauge(Arc::new(AtomicI64::new(0)))
        }
    }
}

/// The histogram registered under `name`, created on first use.
pub fn histogram(name: &str) -> Histogram {
    let mut map = lock();
    match map
        .entry(name.to_string())
        .or_insert_with(|| Metric::Histogram(Arc::new(HistogramCells::new())))
    {
        Metric::Histogram(cells) => Histogram(cells.clone()),
        _ => {
            debug_assert!(false, "metric {name} registered as a different kind");
            Histogram(Arc::new(HistogramCells::new()))
        }
    }
}

/// Snapshot of every registered metric, sorted by name.
pub fn snapshot() -> Vec<MetricSnapshot> {
    let map = lock();
    map.iter()
        .map(|(name, metric)| MetricSnapshot {
            name: name.clone(),
            value: match metric {
                Metric::Counter(c) => MetricValue::Counter(c.load(Ordering::Relaxed)),
                Metric::Gauge(g) => MetricValue::Gauge(g.load(Ordering::Relaxed)),
                Metric::Histogram(h) => MetricValue::Histogram(Histogram(h.clone()).snapshot()),
            },
        })
        .collect()
}

/// The current count of the counter registered under `name`, if any —
/// a convenience for tests reconciling totals.
pub fn counter_value(name: &str) -> Option<u64> {
    let map = lock();
    match map.get(name) {
        Some(Metric::Counter(c)) => Some(c.load(Ordering::Relaxed)),
        _ => None,
    }
}

/// Zeroes every registered metric (handles stay valid) and clears the
/// span ring buffer. For tests and benchmarks; production readers should
/// diff snapshots instead.
pub fn reset() {
    let map = lock();
    for metric in map.values() {
        match metric {
            Metric::Counter(c) => c.store(0, Ordering::Relaxed),
            Metric::Gauge(g) => g.store(0, Ordering::Relaxed),
            Metric::Histogram(h) => {
                for b in &h.buckets {
                    b.store(0, Ordering::Relaxed);
                }
                h.count.store(0, Ordering::Relaxed);
                h.sum.store(0, Ordering::Relaxed);
            }
        }
    }
    drop(map);
    crate::trace::clear_ring();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_le(0), 0);
        assert_eq!(bucket_le(1), 1);
        assert_eq!(bucket_le(2), 3);
        assert_eq!(bucket_le(10), 1023);
        assert_eq!(bucket_le(63), u64::MAX);
    }

    #[test]
    fn handles_share_the_registered_cell() {
        let a = counter("test.registry.shared");
        let b = counter("test.registry.shared");
        assert!(Arc::ptr_eq(&a.0, &b.0), "same name, same cell");
    }

    #[test]
    fn kind_mismatch_returns_a_detached_cell_in_release() {
        // Only meaningful without debug assertions; with them the
        // mismatch would trip the debug_assert instead.
        if !cfg!(debug_assertions) {
            let _c = counter("test.registry.kind");
            let g = gauge("test.registry.kind");
            g.set(1); // must not corrupt the counter cell
            assert_eq!(counter_value("test.registry.kind"), Some(0));
        }
    }
}
