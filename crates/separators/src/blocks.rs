//! Blocks `(S, C)` and their realizations `R(S, C)`.
//!
//! A *block* of `G` is a pair `(S, C)` of a minimal separator `S` and an
//! `S`-component `C` (a connected component of `G \ S`); it is *full* when
//! every vertex of `S` has a neighbor in `C`. The *realization* `R(S, C)`
//! is the induced subgraph on `S ∪ C` with `S` saturated into a clique
//! (Section 5.1 of the paper). The Bouchitté–Todinca dynamic program
//! computes one optimal minimal triangulation per full block, in ascending
//! order of `|S ∪ C|`.

use mtr_graph::{Graph, VertexSet};

/// A block `(S, C)`: a separator together with one of its components.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Block {
    /// The (minimal) separator `S`.
    pub separator: VertexSet,
    /// The `S`-component `C`.
    pub component: VertexSet,
}

impl Block {
    /// Creates a block from its separator and component.
    pub fn new(separator: VertexSet, component: VertexSet) -> Self {
        debug_assert!(separator.is_disjoint(&component));
        Block {
            separator,
            component,
        }
    }

    /// The vertex set `S ∪ C` the paper identifies the block with.
    pub fn vertices(&self) -> VertexSet {
        self.separator.union(&self.component)
    }

    /// `|S ∪ C|`, the quantity the DP sorts blocks by.
    pub fn size(&self) -> usize {
        self.separator.len() + self.component.len()
    }

    /// `true` iff the block is full in `g`: every vertex of `S` has a
    /// neighbor in `C`.
    pub fn is_full(&self, g: &Graph) -> bool {
        let nbhd = g.neighborhood_of_set(&self.component);
        self.separator.is_subset_of(&nbhd)
    }

    /// The realization `R(S, C) = G[S ∪ C] ∪ K_S`, materialized over the
    /// same vertex range as `g` (vertices outside `S ∪ C` become isolated).
    pub fn realization(&self, g: &Graph) -> Graph {
        let verts = self.vertices();
        let mut r = Graph::new(g.n());
        for u in verts.iter() {
            for v in g.neighbors(u).intersection(&verts).iter() {
                if v > u {
                    r.add_edge(u, v);
                }
            }
        }
        r.saturate(&self.separator);
        r
    }

    /// The realization remapped to a compact vertex range `0..|S ∪ C|`,
    /// together with the mapping from new indices to original vertices.
    pub fn realization_remapped(&self, g: &Graph) -> (Graph, Vec<mtr_graph::Vertex>) {
        let verts = self.vertices();
        let (mut sub, mapping) = g.induced_subgraph(&verts);
        let sep_new: Vec<mtr_graph::Vertex> = mapping
            .iter()
            .enumerate()
            .filter(|(_, &old)| self.separator.contains(old))
            .map(|(new, _)| new as mtr_graph::Vertex)
            .collect();
        sub.saturate(&VertexSet::from_slice(sub.n(), &sep_new));
        (sub, mapping)
    }
}

/// All blocks of `g` for a given family of separators: one block per
/// `(S, component of G \ S)` pair.
pub fn all_blocks(g: &Graph, separators: &[VertexSet]) -> Vec<Block> {
    let mut out = Vec::new();
    for s in separators {
        for c in g.components_excluding(s) {
            out.push(Block::new(s.clone(), c));
        }
    }
    out
}

/// All *full* blocks of `g` for the given separators, sorted by ascending
/// `|S ∪ C|` (the processing order of the DP in Figure 3 of the paper).
pub fn full_blocks(g: &Graph, separators: &[VertexSet]) -> Vec<Block> {
    let mut out: Vec<Block> = all_blocks(g, separators)
        .into_iter()
        .filter(|b| b.is_full(g))
        .collect();
    out.sort_by(|a, b| a.size().cmp(&b.size()).then_with(|| a.cmp(b)));
    out
}

/// The blocks *associated to* a vertex set `Ω` (Section 5.1): for each
/// component `C` of `G \ Ω`, the pair `(N(C), C)`. When `Ω` is a potential
/// maximal clique these are full blocks of `g` and `N(C)` is a minimal
/// separator.
pub fn blocks_of_set(g: &Graph, omega: &VertexSet) -> Vec<Block> {
    g.components_excluding(omega)
        .into_iter()
        .map(|c| Block::new(g.neighborhood_of_set(&c), c))
        .collect()
}

/// The minimal separators associated to `Ω`: the deduplicated neighborhoods
/// of the components of `G \ Ω`.
pub fn separators_of_set(g: &Graph, omega: &VertexSet) -> Vec<VertexSet> {
    let mut seps: Vec<VertexSet> = blocks_of_set(g, omega)
        .into_iter()
        .map(|b| b.separator)
        .collect();
    seps.sort();
    seps.dedup();
    seps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::minimal_separators;
    use mtr_graph::paper_example_graph;

    #[test]
    fn paper_blocks_and_fullness() {
        let g = paper_example_graph();
        let seps = minimal_separators(&g);
        let blocks = all_blocks(&g, &seps);
        // Per Figure 2: S1 has 2 blocks, S2 has 4, S3 has 2 — 8 in total.
        assert_eq!(blocks.len(), 8);
        let full = full_blocks(&g, &seps);
        // All are full except (S2, C4) = ({u,v}, {v'}): v' is not adjacent to u.
        assert_eq!(full.len(), 7);
        let not_full = Block::new(
            VertexSet::from_slice(6, &[0, 1]),
            VertexSet::singleton(6, 2),
        );
        assert!(!not_full.is_full(&g));
        assert!(blocks.contains(&not_full));
        assert!(!full.contains(&not_full));
    }

    #[test]
    fn full_blocks_sorted_by_size() {
        let g = paper_example_graph();
        let seps = minimal_separators(&g);
        let full = full_blocks(&g, &seps);
        for w in full.windows(2) {
            assert!(w[0].size() <= w[1].size());
        }
    }

    #[test]
    fn realization_saturates_separator() {
        let g = paper_example_graph();
        // Block (S1, {u}) with S1 = {w1,w2,w3}: realization is the star on
        // u plus the triangle w1-w2-w3.
        let b = Block::new(
            VertexSet::from_slice(6, &[3, 4, 5]),
            VertexSet::singleton(6, 0),
        );
        assert!(b.is_full(&g));
        let r = b.realization(&g);
        assert!(r.has_edge(3, 4) && r.has_edge(3, 5) && r.has_edge(4, 5));
        assert!(r.has_edge(0, 3) && r.has_edge(0, 4) && r.has_edge(0, 5));
        // No edges incident to vertices outside the block.
        assert_eq!(r.degree(1), 0);
        assert_eq!(r.degree(2), 0);
        assert_eq!(r.m(), 6);
    }

    #[test]
    fn realization_remapped_is_compact() {
        let g = paper_example_graph();
        let b = Block::new(
            VertexSet::from_slice(6, &[0, 1]),
            VertexSet::singleton(6, 3),
        );
        let (sub, mapping) = b.realization_remapped(&g);
        assert_eq!(sub.n(), 3);
        assert_eq!(mapping, vec![0, 1, 3]);
        // The separator {u, v} is saturated in the realization.
        assert!(sub.has_edge(0, 1));
        assert_eq!(sub.m(), 3);
    }

    #[test]
    fn block_vertices_and_size() {
        let b = Block::new(
            VertexSet::from_slice(6, &[0, 1]),
            VertexSet::from_slice(6, &[3, 4]),
        );
        assert_eq!(b.size(), 4);
        assert_eq!(b.vertices().to_vec(), vec![0, 1, 3, 4]);
    }

    #[test]
    fn blocks_of_pmc() {
        let g = paper_example_graph();
        // Ω = {w1, u, v} (a PMC per Example 5.2): its associated separators
        // are S2 = {u,v} and S3 = {v}, with blocks ({u,v},{w2}), ({u,v},{w3}),
        // ({v},{v'}) — and also the block for w? No: components of G \ Ω are
        // {w2}, {w3}, {v'}.
        let omega = VertexSet::from_slice(6, &[0, 1, 3]);
        let blocks = blocks_of_set(&g, &omega);
        assert_eq!(blocks.len(), 3);
        let seps = separators_of_set(&g, &omega);
        assert_eq!(seps.len(), 2);
        assert!(seps.contains(&VertexSet::from_slice(6, &[0, 1])));
        assert!(seps.contains(&VertexSet::from_slice(6, &[1])));
        for b in &blocks {
            assert!(b.is_full(&g));
        }
    }
}
