//! The crossing / parallel relation between minimal separators, and the
//! *separator graph* built from it.
//!
//! Two minimal separators `S` and `T` cross when `S` separates two vertices
//! of `T` (equivalently, `T \ S` meets at least two components of `G \ S`);
//! crossing is symmetric. Parra and Scheffler's theorem (Theorem 2.5 of the
//! paper) states that the minimal triangulations of `G` are exactly the
//! graphs obtained by saturating a *maximal set of pairwise-parallel*
//! minimal separators — i.e. a maximal independent set of the separator
//! graph. Both the CKK-style baseline and several tests rely on this.

use mtr_graph::{Graph, VertexSet};

/// `true` iff `s` crosses `t` in `g`: `s` separates two vertices of `t`.
///
/// Implemented as: `t` intersects at least two distinct components of
/// `G \ s`.
pub fn crosses(g: &Graph, s: &VertexSet, t: &VertexSet) -> bool {
    let mut hit = 0;
    for c in g.components_excluding(s) {
        if c.intersects(t) {
            hit += 1;
            if hit >= 2 {
                return true;
            }
        }
    }
    false
}

/// `true` iff `s` and `t` are parallel (do not cross).
pub fn parallel(g: &Graph, s: &VertexSet, t: &VertexSet) -> bool {
    !crosses(g, s, t)
}

/// The separator graph over an indexed family of minimal separators:
/// vertex `i` corresponds to `separators[i]`, and `i` is adjacent to `j`
/// when the two separators cross.
///
/// The maximal independent sets of this graph are exactly the maximal sets
/// of pairwise-parallel separators, i.e. the minimal triangulations.
#[derive(Clone, Debug)]
pub struct SeparatorGraph {
    /// The separators, in the order used for indexing.
    separators: Vec<VertexSet>,
    /// `adjacency[i]` holds the indices of separators crossing `separators[i]`.
    adjacency: Vec<VertexSet>,
}

impl SeparatorGraph {
    /// Builds the separator graph for the given separators of `g`.
    ///
    /// Quadratic in the number of separators, with one component computation
    /// per pair; this is the dominant part of the CKK-style baseline's
    /// initialization.
    pub fn build(g: &Graph, separators: Vec<VertexSet>) -> Self {
        let k = separators.len() as u32;
        let mut adjacency: Vec<VertexSet> = (0..k).map(|_| VertexSet::empty(k)).collect();
        // For each separator, compute the components of G \ S once and test
        // every *later* separator against them — crossing is symmetric
        // (Parra–Scheffler), so the pair (i, j) only needs one test and the
        // insert below records both directions.
        for i in 0..separators.len() {
            let comps = g.components_excluding(&separators[i]);
            for j in i + 1..separators.len() {
                let mut hit = 0;
                for c in &comps {
                    if c.intersects(&separators[j]) {
                        hit += 1;
                        if hit >= 2 {
                            break;
                        }
                    }
                }
                if hit >= 2 {
                    adjacency[i].insert(j as u32);
                    adjacency[j].insert(i as u32);
                }
            }
        }
        SeparatorGraph {
            separators,
            adjacency,
        }
    }

    /// Number of separators (vertices of the separator graph).
    pub fn len(&self) -> usize {
        self.separators.len()
    }

    /// `true` when there are no separators at all.
    pub fn is_empty(&self) -> bool {
        self.separators.is_empty()
    }

    /// The separators, in index order.
    pub fn separators(&self) -> &[VertexSet] {
        &self.separators
    }

    /// The indices of separators crossing separator `i`.
    pub fn crossing_neighbors(&self, i: usize) -> &VertexSet {
        &self.adjacency[i]
    }

    /// `true` iff separators `i` and `j` cross.
    pub fn are_crossing(&self, i: usize, j: usize) -> bool {
        self.adjacency[i].contains(j as u32)
    }

    /// `true` iff the given set of separator indices is pairwise parallel.
    pub fn is_independent(&self, indices: &VertexSet) -> bool {
        indices
            .iter()
            .all(|i| self.adjacency[i as usize].is_disjoint(indices))
    }

    /// `true` iff the given set of separator indices is a *maximal* set of
    /// pairwise-parallel separators.
    pub fn is_maximal_independent(&self, indices: &VertexSet) -> bool {
        if !self.is_independent(indices) {
            return false;
        }
        (0..self.len() as u32)
            .filter(|v| !indices.contains(*v))
            .all(|v| self.adjacency[v as usize].intersects(indices))
    }

    /// Greedily extends `seed` (assumed independent) to a maximal
    /// independent set, preferring smaller indices.
    pub fn greedy_maximal_independent(&self, seed: &VertexSet) -> VertexSet {
        debug_assert!(self.is_independent(seed));
        let mut result = seed.clone();
        let mut blocked = VertexSet::empty(self.len() as u32);
        for i in seed.iter() {
            blocked.union_with(&self.adjacency[i as usize]);
        }
        for v in 0..self.len() as u32 {
            if !result.contains(v) && !blocked.contains(v) {
                result.insert(v);
                blocked.union_with(&self.adjacency[v as usize]);
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::minimal_separators;
    use mtr_graph::paper_example_graph;

    #[test]
    fn paper_crossing_relation() {
        let g = paper_example_graph();
        let s1 = VertexSet::from_slice(6, &[3, 4, 5]); // {w1,w2,w3}
        let s2 = VertexSet::from_slice(6, &[0, 1]); // {u,v}
        let s3 = VertexSet::singleton(6, 1); // {v}
        assert!(crosses(&g, &s1, &s2));
        assert!(crosses(&g, &s2, &s1), "crossing must be symmetric");
        assert!(parallel(&g, &s1, &s3));
        assert!(parallel(&g, &s3, &s1));
        assert!(parallel(&g, &s2, &s3));
        // A separator never crosses itself.
        assert!(parallel(&g, &s1, &s1));
    }

    #[test]
    fn separator_graph_of_paper_example() {
        let g = paper_example_graph();
        let seps = minimal_separators(&g);
        let sg = SeparatorGraph::build(&g, seps.clone());
        assert_eq!(sg.len(), 3);
        let i1 = seps.iter().position(|s| s.len() == 3).unwrap(); // {w1,w2,w3}
        let i2 = seps.iter().position(|s| s.len() == 2).unwrap(); // {u,v}
        let i3 = seps.iter().position(|s| s.len() == 1).unwrap(); // {v}
        assert!(sg.are_crossing(i1, i2));
        assert!(!sg.are_crossing(i1, i3));
        assert!(!sg.are_crossing(i2, i3));
        // Maximal independent sets: {S1, S3} and {S2, S3} — exactly the two
        // minimal triangulations of the paper's example.
        let k = sg.len() as u32;
        let mis1 = VertexSet::from_slice(k, &[i1 as u32, i3 as u32]);
        let mis2 = VertexSet::from_slice(k, &[i2 as u32, i3 as u32]);
        assert!(sg.is_maximal_independent(&mis1));
        assert!(sg.is_maximal_independent(&mis2));
        assert!(!sg.is_maximal_independent(&VertexSet::singleton(k, i3 as u32)));
        assert!(!sg.is_independent(&VertexSet::from_slice(k, &[i1 as u32, i2 as u32])));
    }

    #[test]
    fn greedy_extension_is_maximal() {
        let g = paper_example_graph();
        let seps = minimal_separators(&g);
        let sg = SeparatorGraph::build(&g, seps);
        let empty = VertexSet::empty(sg.len() as u32);
        let m = sg.greedy_maximal_independent(&empty);
        assert!(sg.is_maximal_independent(&m));
        for i in 0..sg.len() as u32 {
            let seeded = sg.greedy_maximal_independent(&VertexSet::singleton(sg.len() as u32, i));
            assert!(sg.is_maximal_independent(&seeded));
            assert!(seeded.contains(i));
        }
    }

    #[test]
    fn cycle_separator_graph() {
        // In C5 the minimal separators are the 5 non-adjacent vertex pairs;
        // {a, c} and {b, d} cross whenever the pairs interleave around the
        // cycle. Every separator crosses exactly two others.
        let c5 = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let seps = minimal_separators(&c5);
        let sg = SeparatorGraph::build(&c5, seps);
        assert_eq!(sg.len(), 5);
        for i in 0..5 {
            assert_eq!(sg.crossing_neighbors(i).len(), 2);
        }
    }

    #[test]
    fn empty_separator_graph() {
        let g = Graph::complete(4);
        let sg = SeparatorGraph::build(&g, minimal_separators(&g));
        assert!(sg.is_empty());
        let empty = VertexSet::empty(0);
        assert!(sg.is_maximal_independent(&empty));
    }
}
