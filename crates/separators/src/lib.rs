//! `mtr-separators`: minimal separators, the crossing relation, and blocks.
//!
//! This crate implements the separator-level substrate of the paper:
//!
//! * [`enumerate`] — the Berry–Bordat–Cogis enumeration of all minimal
//!   separators (`MinSep(G)`), with an optional budget for graphs violating
//!   the poly-MS assumption, plus a brute-force reference used in tests;
//! * [`crossing`] — the crossing/parallel relation and the
//!   [`crossing::SeparatorGraph`] whose maximal independent
//!   sets are the minimal triangulations (Parra–Scheffler);
//! * [`blocks`] — blocks `(S, C)`, full blocks, realizations `R(S, C)`, and
//!   the blocks/separators associated to a vertex set, i.e. the objects the
//!   Bouchitté–Todinca dynamic program manipulates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocks;
pub mod crossing;
pub mod enumerate;

pub use blocks::{all_blocks, blocks_of_set, full_blocks, separators_of_set, Block};
pub use crossing::{crosses, parallel, SeparatorGraph};
pub use enumerate::{
    is_minimal_separator, minimal_separators, minimal_separators_bounded,
    minimal_separators_bruteforce, minimal_separators_with_limits, MinSepLimitExceeded,
};
