//! Minimal separator enumeration.
//!
//! The paper (and the Bouchitté–Todinca machinery it generalizes) needs the
//! set `MinSep(G)` of all minimal separators. We implement the generation
//! algorithm of Berry, Bordat and Cogis (WG 1999): seed with the "close"
//! separators `N(C)` for components `C` of `G \ N[v]`, then repeatedly, for
//! an already-found separator `S` and a vertex `x ∈ S`, add `N(C)` for every
//! component `C` of `G \ (S ∪ N(x))`. The process is a fixpoint computation
//! whose total work is polynomial per produced separator.
//!
//! A brute-force enumerator over all vertex subsets is provided for
//! cross-validation on small graphs, together with the standard
//! characterization used by both: `S` is a minimal separator iff `G \ S` has
//! at least two components whose neighborhood is exactly `S` ("full"
//! components).

use mtr_graph::{Graph, VertexSet};
use std::collections::HashSet;
use std::time::{Duration, Instant};

/// `true` iff `s` is a minimal separator of `g`.
///
/// Uses the full-component characterization: `G \ S` must have at least two
/// components `C` with `N(C) = S`.
pub fn is_minimal_separator(g: &Graph, s: &VertexSet) -> bool {
    if s.is_empty() || s.len() == g.n() as usize {
        return false;
    }
    let mut full = 0;
    for c in g.components_excluding(s) {
        if g.neighborhood_of_set(&c) == *s {
            full += 1;
            if full >= 2 {
                return true;
            }
        }
    }
    false
}

/// Enumerates all minimal separators of `g` (Berry–Bordat–Cogis).
///
/// The result is returned in a deterministic order (sorted by the total
/// order on [`VertexSet`]). An optional `limit` aborts the enumeration once
/// more than `limit` separators have been found — callers use this to bound
/// work on graphs that violate the poly-MS assumption; `None` means
/// unbounded. When the limit is hit, `Err(MinSepLimitExceeded)` is returned.
pub fn minimal_separators_bounded(
    g: &Graph,
    limit: Option<usize>,
) -> Result<Vec<VertexSet>, MinSepLimitExceeded> {
    minimal_separators_with_limits(g, limit, None)
}

/// Enumerates the minimal separators of `g` under both an optional count
/// limit and an optional wall-clock budget. Exceeding either aborts with
/// [`MinSepLimitExceeded`]; the tractability experiments (Figures 5 and 7)
/// use this to mirror the paper's per-graph time limits.
pub fn minimal_separators_with_limits(
    g: &Graph,
    limit: Option<usize>,
    time_budget: Option<Duration>,
) -> Result<Vec<VertexSet>, MinSepLimitExceeded> {
    let start = Instant::now();
    let mut found: HashSet<VertexSet> = HashSet::new();
    let mut queue: Vec<VertexSet> = Vec::new();

    let push = |s: VertexSet, found: &mut HashSet<VertexSet>, queue: &mut Vec<VertexSet>| {
        if !s.is_empty() && !found.contains(&s) {
            found.insert(s.clone());
            queue.push(s);
        }
    };

    // Initialization: close separators around every vertex.
    for v in g.vertices() {
        let closed = g.closed_neighbors(v);
        for c in g.components_excluding(&closed) {
            let s = g.neighborhood_of_set(&c);
            push(s, &mut found, &mut queue);
        }
    }

    // Generation step.
    let mut popped = 0usize;
    while let Some(s) = queue.pop() {
        if let Some(limit) = limit {
            if found.len() > limit {
                return Err(MinSepLimitExceeded { limit });
            }
        }
        popped += 1;
        if popped.is_multiple_of(64) {
            if let Some(budget) = time_budget {
                if start.elapsed() > budget {
                    return Err(MinSepLimitExceeded { limit: found.len() });
                }
            }
        }
        for x in s.iter() {
            let mut removed = s.clone();
            removed.union_with(g.neighbors(x));
            removed.insert(x);
            for c in g.components_excluding(&removed) {
                let t = g.neighborhood_of_set(&c);
                push(t, &mut found, &mut queue);
            }
        }
    }

    if let Some(limit) = limit {
        if found.len() > limit {
            return Err(MinSepLimitExceeded { limit });
        }
    }
    let mut out: Vec<VertexSet> = found.into_iter().collect();
    out.sort();
    Ok(out)
}

/// Enumerates all minimal separators of `g` with no bound.
pub fn minimal_separators(g: &Graph) -> Vec<VertexSet> {
    minimal_separators_bounded(g, None).expect("unbounded enumeration cannot exceed a limit")
}

/// Error returned by [`minimal_separators_bounded`] when the separator count
/// exceeds the caller's limit (the graph is not "poly-MS manageable" at that
/// budget).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MinSepLimitExceeded {
    /// The limit that was exceeded.
    pub limit: usize,
}

impl std::fmt::Display for MinSepLimitExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "more than {} minimal separators", self.limit)
    }
}

impl std::error::Error for MinSepLimitExceeded {}

/// Brute-force minimal separator enumeration by testing every vertex subset.
///
/// Exponential; intended for cross-validating [`minimal_separators`] on
/// graphs with at most ~20 vertices in tests.
pub fn minimal_separators_bruteforce(g: &Graph) -> Vec<VertexSet> {
    let n = g.n();
    assert!(n <= 24, "brute force is limited to small graphs");
    let mut out = Vec::new();
    for mask in 0u32..(1u32 << n) {
        let s = VertexSet::from_iter(n, (0..n).filter(|&v| (mask >> v) & 1 == 1));
        if is_minimal_separator(g, &s) {
            out.push(s);
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtr_graph::paper_example_graph;

    #[test]
    fn paper_graph_has_exactly_three_minimal_separators() {
        let g = paper_example_graph();
        let seps = minimal_separators(&g);
        let expected = vec![
            VertexSet::from_slice(6, &[3, 4, 5]), // S1 = {w1, w2, w3}
            VertexSet::from_slice(6, &[0, 1]),    // S2 = {u, v}
            VertexSet::from_slice(6, &[1]),       // S3 = {v}
        ];
        assert_eq!(seps.len(), 3);
        for e in &expected {
            assert!(seps.contains(e), "missing separator {e:?}");
        }
    }

    #[test]
    fn minimal_separator_predicate() {
        let g = paper_example_graph();
        assert!(is_minimal_separator(
            &g,
            &VertexSet::from_slice(6, &[3, 4, 5])
        ));
        assert!(is_minimal_separator(&g, &VertexSet::from_slice(6, &[0, 1])));
        assert!(is_minimal_separator(&g, &VertexSet::singleton(6, 1)));
        // {u, v, w1} separates w2 from v' but is not minimal.
        assert!(!is_minimal_separator(
            &g,
            &VertexSet::from_slice(6, &[0, 1, 3])
        ));
        // The empty set and the full set are never minimal separators.
        assert!(!is_minimal_separator(&g, &VertexSet::empty(6)));
        assert!(!is_minimal_separator(&g, &VertexSet::full(6)));
    }

    #[test]
    fn matches_bruteforce_on_small_graphs() {
        let cases: Vec<Graph> = vec![
            paper_example_graph(),
            Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]), // C4
            Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]), // C5
            Graph::complete(5),
            Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]), // path
            Graph::from_edges(7, &[(0, 1), (0, 2), (0, 3), (3, 4), (3, 5), (5, 6)]), // tree
            Graph::new(4),                                                   // edgeless
        ];
        for g in cases {
            assert_eq!(
                minimal_separators(&g),
                minimal_separators_bruteforce(&g),
                "mismatch on {g:?}"
            );
        }
    }

    #[test]
    fn cycle_separators() {
        // In C_n every pair of non-adjacent vertices is a minimal separator.
        let c5 = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let seps = minimal_separators(&c5);
        assert_eq!(seps.len(), 5);
        assert!(seps.iter().all(|s| s.len() == 2));
    }

    #[test]
    fn complete_graph_has_no_separators() {
        assert!(minimal_separators(&Graph::complete(6)).is_empty());
        assert!(minimal_separators(&Graph::new(1)).is_empty());
        assert!(minimal_separators(&Graph::new(0)).is_empty());
    }

    #[test]
    fn disconnected_graph_separators() {
        // Two triangles sharing no vertex: no separator separates within a
        // triangle, and the empty set is excluded by definition here
        // (we require at least two *full* components of G \ S with N(C)=S,
        // which the empty set does satisfy in a disconnected graph — but the
        // empty set is explicitly excluded as degenerate).
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]);
        let seps = minimal_separators(&g);
        assert!(seps.is_empty());
        // A path plus an isolated vertex still has its path separators.
        let g2 = Graph::from_edges(4, &[(0, 1), (1, 2)]);
        let seps2 = minimal_separators(&g2);
        assert_eq!(seps2, vec![VertexSet::singleton(4, 1)]);
    }

    #[test]
    fn limit_aborts_enumeration() {
        // C8 has 8*5/2 = 20 minimal separators; a limit of 5 must trip.
        let edges: Vec<(u32, u32)> = (0..8).map(|i| (i, (i + 1) % 8)).collect();
        let c8 = Graph::from_edges(8, &edges);
        assert_eq!(
            minimal_separators_bounded(&c8, Some(5)),
            Err(MinSepLimitExceeded { limit: 5 })
        );
        assert!(minimal_separators_bounded(&c8, Some(1000)).is_ok());
    }

    #[test]
    fn star_graph_center_is_only_separator() {
        let star = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let seps = minimal_separators(&star);
        assert_eq!(seps, vec![VertexSet::singleton(5, 0)]);
    }
}
