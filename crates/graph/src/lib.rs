//! `mtr-graph`: the graph substrate for the ranked-triangulations workspace.
//!
//! This crate provides the data structures every other crate builds on:
//!
//! * [`VertexSet`] — a dense bitset over the vertices of one host graph;
//!   minimal separators, blocks, potential maximal cliques and bags are all
//!   represented with it.
//! * [`Graph`] — a simple undirected graph with bitset adjacency and the
//!   neighborhood / component / saturation operations the Bouchitté–Todinca
//!   machinery needs.
//! * [`Hypergraph`] — join queries and constraint scopes, with primal-graph
//!   extraction and exact bag edge covers for hypertree-width-style costs.
//! * [`io`] — parsers and writers for PACE `.gr`, DIMACS `.col` and plain
//!   edge-list files.
//! * [`canonical`] — canonical labeling for small-to-medium graphs
//!   (individualization–refinement with orbit pruning), producing the
//!   stable 128-bit [`CanonicalKey`] content addresses the atom cache of
//!   `mtr-cache` is keyed by.
//!
//! The crate is dependency-free and deliberately small; all triangulation
//! logic lives in the crates layered on top of it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canonical;
pub mod graph;
pub mod hypergraph;
pub mod io;
pub mod vertexset;

pub use canonical::{AutGroup, CanonicalForm, CanonicalKey};
pub use graph::Graph;
pub use hypergraph::Hypergraph;
pub use vertexset::{Vertex, VertexSet};

/// Builds the running-example graph of the paper (Figure 1(a)).
///
/// Vertices: `u = 0`, `v = 1`, `v' = 2`, `w1 = 3`, `w2 = 4`, `w3 = 5`.
/// `u` and `v` are adjacent to each of `w1, w2, w3`, and `v'` is adjacent to
/// `v`. The graph has exactly three minimal separators
/// (`{w1,w2,w3}`, `{u,v}`, `{v}`) and two minimal triangulations, which makes
/// it the standard fixture for unit tests across the workspace.
pub fn paper_example_graph() -> Graph {
    Graph::from_edges(6, &[(0, 3), (0, 4), (0, 5), (1, 3), (1, 4), (1, 5), (1, 2)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_shape() {
        let g = paper_example_graph();
        assert_eq!(g.n(), 6);
        assert_eq!(g.m(), 7);
        assert!(g.is_connected());
    }
}
