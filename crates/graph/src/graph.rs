//! Undirected graph with bitset adjacency.
//!
//! All graphs in the workspace are simple undirected graphs over a dense
//! vertex range `0..n`. Adjacency is stored as one [`VertexSet`] per vertex,
//! which makes the neighborhood-of-a-set, separator, and component
//! computations used by the triangulation algorithms word-parallel.

use crate::vertexset::{Vertex, VertexSet};
use std::fmt;

/// A simple undirected graph over vertices `0..n`.
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    n: u32,
    m: usize,
    adj: Vec<VertexSet>,
}

impl Graph {
    /// Creates an edgeless graph with `n` vertices.
    pub fn new(n: u32) -> Self {
        Graph {
            n,
            m: 0,
            adj: (0..n).map(|_| VertexSet::empty(n)).collect(),
        }
    }

    /// Creates the complete graph on `n` vertices.
    pub fn complete(n: u32) -> Self {
        let mut g = Graph::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                g.add_edge(u, v);
            }
        }
        g
    }

    /// Creates a graph from an edge list.
    ///
    /// Self-loops are ignored; duplicate edges are counted once.
    pub fn from_edges(n: u32, edges: &[(Vertex, Vertex)]) -> Self {
        let mut g = Graph::new(n);
        for &(u, v) in edges {
            if u != v {
                g.add_edge(u, v);
            }
        }
        g
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Number of edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Iterator over all vertices `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = Vertex> {
        0..self.n
    }

    /// The full vertex set as a [`VertexSet`].
    pub fn vertex_set(&self) -> VertexSet {
        VertexSet::full(self.n)
    }

    /// Adds the edge `{u, v}`. Returns `true` if the edge is new.
    ///
    /// # Panics
    /// Panics on self-loops or out-of-range endpoints.
    pub fn add_edge(&mut self, u: Vertex, v: Vertex) -> bool {
        assert!(u != v, "self-loop {u}");
        assert!(
            u < self.n && v < self.n,
            "edge ({u},{v}) out of range n={}",
            self.n
        );
        let added = self.adj[u as usize].insert(v);
        self.adj[v as usize].insert(u);
        if added {
            self.m += 1;
        }
        added
    }

    /// Removes the edge `{u, v}` if present. Returns `true` if it was removed.
    pub fn remove_edge(&mut self, u: Vertex, v: Vertex) -> bool {
        let removed = self.adj[u as usize].remove(v);
        self.adj[v as usize].remove(u);
        if removed {
            self.m -= 1;
        }
        removed
    }

    /// Edge membership test.
    #[inline]
    pub fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        u != v && self.adj[u as usize].contains(v)
    }

    /// Open neighborhood `N(v)`.
    #[inline]
    pub fn neighbors(&self, v: Vertex) -> &VertexSet {
        &self.adj[v as usize]
    }

    /// Closed neighborhood `N[v] = N(v) ∪ {v}`.
    pub fn closed_neighbors(&self, v: Vertex) -> VertexSet {
        let mut s = self.adj[v as usize].clone();
        s.insert(v);
        s
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: Vertex) -> usize {
        self.adj[v as usize].len()
    }

    /// Open neighborhood of a set: `N(U) = (⋃_{v∈U} N(v)) \ U`.
    pub fn neighborhood_of_set(&self, set: &VertexSet) -> VertexSet {
        let mut out = VertexSet::empty(self.n);
        for v in set.iter() {
            out.union_with(&self.adj[v as usize]);
        }
        out.difference_with(set);
        out
    }

    /// Iterator over all edges as pairs `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (Vertex, Vertex)> + '_ {
        (0..self.n).flat_map(move |u| {
            self.adj[u as usize]
                .iter()
                .filter(move |&v| v > u)
                .map(move |v| (u, v))
        })
    }

    /// `true` iff every two distinct vertices of `set` are adjacent.
    pub fn is_clique(&self, set: &VertexSet) -> bool {
        set.iter().all(|v| {
            let mut required = set.clone();
            required.remove(v);
            required.is_subset_of(&self.closed_neighbors(v))
        })
    }

    /// Number of unordered non-adjacent pairs inside `set` (the edges a
    /// saturation of `set` would add).
    pub fn missing_edges_in(&self, set: &VertexSet) -> usize {
        let k = set.len();
        let total = k * k.saturating_sub(1) / 2;
        let mut present = 0;
        for v in set.iter() {
            present += self.adj[v as usize].intersection_len(set);
        }
        total - present / 2
    }

    /// Adds every missing edge inside `set` (makes `set` a clique).
    /// Returns the number of edges added.
    pub fn saturate(&mut self, set: &VertexSet) -> usize {
        let mut added = 0;
        let vs = set.to_vec();
        for (i, &u) in vs.iter().enumerate() {
            for &v in &vs[i + 1..] {
                if self.add_edge(u, v) {
                    added += 1;
                }
            }
        }
        added
    }

    /// Returns `self ∪ K_set`: a copy of the graph with `set` saturated.
    pub fn saturated(&self, set: &VertexSet) -> Graph {
        let mut g = self.clone();
        g.saturate(set);
        g
    }

    /// Graph union over the same vertex range: edges of `self` plus edges of `other`.
    ///
    /// # Panics
    /// Panics if the vertex counts differ.
    pub fn union(&self, other: &Graph) -> Graph {
        assert_eq!(
            self.n, other.n,
            "graph union requires the same vertex range"
        );
        let mut g = self.clone();
        for (u, v) in other.edges() {
            g.add_edge(u, v);
        }
        g
    }

    /// The subgraph induced by `set`, remapped to vertices `0..set.len()`.
    ///
    /// Returns the induced graph together with the mapping from new indices
    /// to the original vertices (`mapping[new] = old`).
    pub fn induced_subgraph(&self, set: &VertexSet) -> (Graph, Vec<Vertex>) {
        let mapping: Vec<Vertex> = set.to_vec();
        let k = mapping.len() as u32;
        let mut back = vec![u32::MAX; self.n as usize];
        for (new, &old) in mapping.iter().enumerate() {
            back[old as usize] = new as u32;
        }
        let mut g = Graph::new(k);
        for (new_u, &old_u) in mapping.iter().enumerate() {
            for old_v in self.adj[old_u as usize].intersection(set).iter() {
                if old_v > old_u {
                    g.add_edge(new_u as u32, back[old_v as usize]);
                }
            }
        }
        (g, mapping)
    }

    /// The subgraph induced by the vertex prefix `0..k`, keeping vertex indices.
    pub fn induced_prefix(&self, k: u32) -> Graph {
        assert!(k <= self.n);
        let mut g = Graph::new(k);
        let prefix = VertexSet::from_iter(self.n, 0..k);
        for u in 0..k {
            for v in self.adj[u as usize].intersection(&prefix).iter() {
                if v > u {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }

    /// Connected components of the subgraph induced by `within`.
    ///
    /// Each component is returned as a [`VertexSet`] in the *original* vertex
    /// indexing. Components are returned in order of their smallest vertex.
    pub fn components_within(&self, within: &VertexSet) -> Vec<VertexSet> {
        let mut seen = VertexSet::empty(self.n);
        let mut out = Vec::new();
        let mut stack: Vec<Vertex> = Vec::new();
        for start in within.iter() {
            if seen.contains(start) {
                continue;
            }
            let mut comp = VertexSet::empty(self.n);
            stack.push(start);
            seen.insert(start);
            comp.insert(start);
            while let Some(v) = stack.pop() {
                let nbrs = self.adj[v as usize].intersection(within);
                for w in nbrs.iter() {
                    if seen.insert(w) {
                        comp.insert(w);
                        stack.push(w);
                    }
                }
            }
            out.push(comp);
        }
        out
    }

    /// Connected components of `G \ removed` (a `U`-component for `U = removed`).
    pub fn components_excluding(&self, removed: &VertexSet) -> Vec<VertexSet> {
        self.components_within(&removed.complement())
    }

    /// Connected components of the whole graph.
    pub fn components(&self) -> Vec<VertexSet> {
        self.components_within(&self.vertex_set())
    }

    /// `true` iff the graph is connected (the empty graph is connected).
    pub fn is_connected(&self) -> bool {
        self.n == 0 || self.components().len() == 1
    }

    /// `true` iff there is a path between `u` and `v` avoiding `separator`.
    ///
    /// Both endpoints must lie outside the separator for a path to exist.
    pub fn connected_avoiding(&self, u: Vertex, v: Vertex, separator: &VertexSet) -> bool {
        if separator.contains(u) || separator.contains(v) {
            return false;
        }
        if u == v {
            return true;
        }
        let within = separator.complement();
        let mut seen = VertexSet::empty(self.n);
        let mut stack = vec![u];
        seen.insert(u);
        while let Some(x) = stack.pop() {
            if x == v {
                return true;
            }
            for w in self.adj[x as usize].intersection(&within).iter() {
                if seen.insert(w) {
                    stack.push(w);
                }
            }
        }
        false
    }

    /// `true` iff `sep` is a `(u,v)`-separator: removing it disconnects `u` from `v`.
    pub fn separates(&self, sep: &VertexSet, u: Vertex, v: Vertex) -> bool {
        !sep.contains(u) && !sep.contains(v) && !self.connected_avoiding(u, v, sep)
    }

    /// The fill set of a supergraph `h` relative to this graph: the edges of
    /// `h` that are not edges of `self`.
    ///
    /// # Panics
    /// Panics if `h` has a different vertex count or misses an edge of `self`.
    pub fn fill_edges_of(&self, h: &Graph) -> Vec<(Vertex, Vertex)> {
        assert_eq!(self.n, h.n);
        let mut fill = Vec::new();
        for (u, v) in h.edges() {
            if !self.has_edge(u, v) {
                fill.push((u, v));
            }
        }
        debug_assert!(
            self.edges().all(|(u, v)| h.has_edge(u, v)),
            "supergraph is missing an edge of the base graph"
        );
        fill
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph(n={}, m={}, edges={:?})",
            self.n,
            self.m,
            self.edges().collect::<Vec<_>>()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The running-example graph G of the paper (Figure 1(a)):
    /// vertices u=0, v=1, v'=2, w1=3, w2=4, w3=5;
    /// u and v are both adjacent to w1, w2, w3; v' is adjacent to v only.
    pub(crate) fn paper_graph() -> Graph {
        Graph::from_edges(6, &[(0, 3), (0, 4), (0, 5), (1, 3), (1, 4), (1, 5), (1, 2)])
    }

    #[test]
    fn basic_construction() {
        let g = paper_graph();
        assert_eq!(g.n(), 6);
        assert_eq!(g.m(), 7);
        assert!(g.has_edge(0, 3));
        assert!(g.has_edge(3, 0));
        assert!(!g.has_edge(0, 1));
        assert_eq!(g.degree(1), 4);
        assert_eq!(g.degree(2), 1);
    }

    #[test]
    fn add_remove_edges() {
        let mut g = Graph::new(4);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(1, 0));
        assert_eq!(g.m(), 1);
        assert!(g.remove_edge(0, 1));
        assert!(!g.remove_edge(0, 1));
        assert_eq!(g.m(), 0);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loops_panic() {
        let mut g = Graph::new(3);
        g.add_edge(1, 1);
    }

    #[test]
    fn complete_graph() {
        let g = Graph::complete(5);
        assert_eq!(g.m(), 10);
        assert!(g.is_clique(&g.vertex_set()));
        assert_eq!(g.missing_edges_in(&g.vertex_set()), 0);
    }

    #[test]
    fn neighborhood_of_set() {
        let g = paper_graph();
        // N({u, v}) = {w1, w2, w3, v'}
        let uv = VertexSet::from_slice(6, &[0, 1]);
        assert_eq!(g.neighborhood_of_set(&uv).to_vec(), vec![2, 3, 4, 5]);
        // N({w1}) = {u, v}
        let w1 = VertexSet::singleton(6, 3);
        assert_eq!(g.neighborhood_of_set(&w1).to_vec(), vec![0, 1]);
    }

    #[test]
    fn clique_and_missing_edges() {
        let g = paper_graph();
        let s = VertexSet::from_slice(6, &[0, 1, 3]); // u, v, w1: missing edge {u,v}
        assert!(!g.is_clique(&s));
        assert_eq!(g.missing_edges_in(&s), 1);
        let t = VertexSet::from_slice(6, &[1, 2]); // v, v' adjacent
        assert!(g.is_clique(&t));
        // Singletons and the empty set are cliques.
        assert!(g.is_clique(&VertexSet::singleton(6, 0)));
        assert!(g.is_clique(&VertexSet::empty(6)));
        // {w1, w2, w3} is an independent set: 3 missing edges.
        let w = VertexSet::from_slice(6, &[3, 4, 5]);
        assert_eq!(g.missing_edges_in(&w), 3);
    }

    #[test]
    fn saturation() {
        let mut g = paper_graph();
        let w = VertexSet::from_slice(6, &[3, 4, 5]);
        let added = g.saturate(&w);
        assert_eq!(added, 3);
        assert!(g.is_clique(&w));
        assert_eq!(g.m(), 10);
        // Saturating again adds nothing.
        assert_eq!(g.saturate(&w), 0);
    }

    #[test]
    fn graph_union() {
        let a = Graph::from_edges(4, &[(0, 1)]);
        let b = Graph::from_edges(4, &[(1, 2), (0, 1)]);
        let u = a.union(&b);
        assert_eq!(u.m(), 2);
        assert!(u.has_edge(0, 1));
        assert!(u.has_edge(1, 2));
    }

    #[test]
    fn components_and_separators() {
        let g = paper_graph();
        assert!(g.is_connected());
        // Removing S1 = {w1,w2,w3} separates u from v (and v').
        let s1 = VertexSet::from_slice(6, &[3, 4, 5]);
        let comps = g.components_excluding(&s1);
        assert_eq!(comps.len(), 2);
        assert!(g.separates(&s1, 0, 1));
        // S2 = {u, v} separates w1 from w2.
        let s2 = VertexSet::from_slice(6, &[0, 1]);
        assert!(g.separates(&s2, 3, 4));
        // S3 = {v} separates u from v'.
        let s3 = VertexSet::singleton(6, 1);
        assert!(g.separates(&s3, 0, 2));
        // {v} does not separate u from w1.
        assert!(!g.separates(&s3, 0, 3));
    }

    #[test]
    fn components_within_subsets() {
        let g = paper_graph();
        // Within {u, w1, w2} the vertices u-w1 and u-w2 are connected: one component.
        let sub = VertexSet::from_slice(6, &[0, 3, 4]);
        assert_eq!(g.components_within(&sub).len(), 1);
        // Within {w1, w2, w3} there are no edges: three components.
        let ws = VertexSet::from_slice(6, &[3, 4, 5]);
        assert_eq!(g.components_within(&ws).len(), 3);
    }

    #[test]
    fn induced_subgraph_remaps() {
        let g = paper_graph();
        let set = VertexSet::from_slice(6, &[0, 1, 3, 4]); // u, v, w1, w2
        let (sub, mapping) = g.induced_subgraph(&set);
        assert_eq!(sub.n(), 4);
        assert_eq!(mapping, vec![0, 1, 3, 4]);
        // Edges: u-w1, u-w2, v-w1, v-w2 (no u-v).
        assert_eq!(sub.m(), 4);
        assert!(!sub.has_edge(0, 1));
    }

    #[test]
    fn induced_prefix_keeps_indices() {
        let g = paper_graph();
        let p = g.induced_prefix(4); // u, v, v', w1
        assert_eq!(p.n(), 4);
        assert!(p.has_edge(0, 3));
        assert!(p.has_edge(1, 3));
        assert!(p.has_edge(1, 2));
        assert_eq!(p.m(), 3);
    }

    #[test]
    fn fill_edges() {
        let g = paper_graph();
        let mut h = g.clone();
        h.add_edge(3, 4);
        h.add_edge(0, 1);
        let fill = g.fill_edges_of(&h);
        assert_eq!(fill.len(), 2);
        assert!(fill.contains(&(3, 4)));
        assert!(fill.contains(&(0, 1)));
    }

    #[test]
    fn edges_iterator_is_canonical() {
        let g = paper_graph();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), g.m());
        assert!(edges.iter().all(|&(u, v)| u < v));
    }

    #[test]
    fn empty_graph_edge_cases() {
        let g = Graph::new(0);
        assert!(g.is_connected());
        assert_eq!(g.components().len(), 0);
        let g1 = Graph::new(1);
        assert!(g1.is_connected());
        assert_eq!(g1.components().len(), 1);
    }
}
