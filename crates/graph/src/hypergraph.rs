//! Hypergraphs and their primal (Gaifman) graphs.
//!
//! Join queries and constraint networks are naturally hypergraphs: each
//! relation atom / constraint scope is a hyperedge over its variables. The
//! decomposition algorithms of this workspace operate on the *primal graph*
//! (every two vertices sharing a hyperedge are connected), while bag costs
//! such as (generalized) hypertree width need the hyperedges themselves to
//! price a bag by the number of hyperedges required to cover it.

use crate::graph::Graph;
use crate::vertexset::{Vertex, VertexSet};

/// A hypergraph over vertices `0..n` with a list of hyperedges.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hypergraph {
    n: u32,
    edges: Vec<VertexSet>,
}

impl Hypergraph {
    /// Creates a hypergraph with `n` vertices and no hyperedges.
    pub fn new(n: u32) -> Self {
        Hypergraph {
            n,
            edges: Vec::new(),
        }
    }

    /// Creates a hypergraph from hyperedges given as vertex slices.
    pub fn from_edges(n: u32, edges: &[&[Vertex]]) -> Self {
        let mut h = Hypergraph::new(n);
        for e in edges {
            h.add_edge_slice(e);
        }
        h
    }

    /// Number of vertices.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Number of hyperedges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds a hyperedge.
    pub fn add_edge(&mut self, edge: VertexSet) {
        assert_eq!(edge.universe(), self.n, "hyperedge universe mismatch");
        self.edges.push(edge);
    }

    /// Adds a hyperedge given as a vertex slice.
    pub fn add_edge_slice(&mut self, edge: &[Vertex]) {
        self.add_edge(VertexSet::from_slice(self.n, edge));
    }

    /// The hyperedges.
    pub fn edges(&self) -> &[VertexSet] {
        &self.edges
    }

    /// The primal (Gaifman) graph: vertices sharing a hyperedge are adjacent.
    pub fn primal_graph(&self) -> Graph {
        let mut g = Graph::new(self.n);
        for e in &self.edges {
            let vs = e.to_vec();
            for (i, &u) in vs.iter().enumerate() {
                for &v in &vs[i + 1..] {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }

    /// Minimum number of hyperedges needed to cover `bag`, computed exactly
    /// by branch-and-bound over the (deduplicated, restricted) hyperedges.
    ///
    /// This is the edge-cover number used by the hypertree-width-style bag
    /// cost. Returns `None` when some vertex of the bag appears in no
    /// hyperedge (the bag cannot be covered).
    ///
    /// Bags produced by tree decompositions of primal graphs are small, so an
    /// exact exponential search in the number of *useful* hyperedges is
    /// practical; a greedy upper bound primes the search.
    pub fn cover_number(&self, bag: &VertexSet) -> Option<usize> {
        if bag.is_empty() {
            return Some(0);
        }
        // Restrict hyperedges to the bag and drop dominated ones.
        let mut restricted: Vec<VertexSet> = self
            .edges
            .iter()
            .map(|e| e.intersection(bag))
            .filter(|e| !e.is_empty())
            .collect();
        restricted.sort_by_key(|e| std::cmp::Reverse(e.len()));
        restricted.dedup();
        let mut useful: Vec<VertexSet> = Vec::new();
        for e in restricted {
            if !useful.iter().any(|f| e.is_subset_of(f)) {
                useful.push(e);
            }
        }
        // Coverage check.
        let mut coverable = VertexSet::empty(self.n);
        for e in &useful {
            coverable.union_with(e);
        }
        if !bag.is_subset_of(&coverable) {
            return None;
        }
        // Greedy upper bound.
        let mut best = {
            let mut remaining = bag.clone();
            let mut picked = 0usize;
            while !remaining.is_empty() {
                let e = useful
                    .iter()
                    .max_by_key(|e| e.intersection_len(&remaining))
                    .expect("coverable bag must intersect some edge");
                remaining.difference_with(e);
                picked += 1;
            }
            picked
        };
        // Branch and bound: always branch on the lowest uncovered vertex.
        fn search(useful: &[VertexSet], remaining: &VertexSet, used: usize, best: &mut usize) {
            if remaining.is_empty() {
                *best = (*best).min(used);
                return;
            }
            if used + 1 >= *best {
                return;
            }
            let pivot = remaining.min_vertex().expect("non-empty remaining set");
            for e in useful.iter().filter(|e| e.contains(pivot)) {
                let next = remaining.difference(e);
                search(useful, &next, used + 1, best);
            }
        }
        search(&useful, bag, 0, &mut best);
        Some(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_query() -> Hypergraph {
        // R(a,b), S(b,c), T(c,a)
        Hypergraph::from_edges(3, &[&[0, 1], &[1, 2], &[2, 0]])
    }

    #[test]
    fn primal_graph_of_triangle_query() {
        let h = triangle_query();
        let g = h.primal_graph();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 2) && g.has_edge(0, 2));
    }

    #[test]
    fn primal_graph_of_wide_edge() {
        let h = Hypergraph::from_edges(4, &[&[0, 1, 2, 3]]);
        let g = h.primal_graph();
        assert_eq!(g.m(), 6);
    }

    #[test]
    fn cover_number_simple() {
        let h = triangle_query();
        // Covering all three vertices requires two binary edges.
        assert_eq!(h.cover_number(&VertexSet::full(3)), Some(2));
        // A single edge covers its own vertices.
        assert_eq!(h.cover_number(&VertexSet::from_slice(3, &[0, 1])), Some(1));
        // Empty bag needs no edges.
        assert_eq!(h.cover_number(&VertexSet::empty(3)), Some(0));
    }

    #[test]
    fn cover_number_prefers_large_edges() {
        let h = Hypergraph::from_edges(5, &[&[0, 1], &[1, 2], &[2, 3], &[3, 4], &[0, 1, 2, 3, 4]]);
        assert_eq!(h.cover_number(&VertexSet::full(5)), Some(1));
    }

    #[test]
    fn cover_number_uncoverable() {
        let h = Hypergraph::from_edges(3, &[&[0, 1]]);
        assert_eq!(h.cover_number(&VertexSet::full(3)), None);
    }

    #[test]
    fn cover_number_exact_beats_greedy() {
        // Universe {0..5}; greedy picks the size-3 edge {2,3,4} first and then
        // needs 3 more edges, while the optimum is 2: {0,1,2} ∪ {3,4,5}.
        let h = Hypergraph::from_edges(6, &[&[2, 3, 4], &[0, 1, 2], &[3, 4, 5], &[0], &[1], &[5]]);
        assert_eq!(h.cover_number(&VertexSet::full(6)), Some(2));
    }
}
