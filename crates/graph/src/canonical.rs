//! Canonical labeling of small-to-medium graphs ("nauty-lite").
//!
//! Atoms of a clique-separator decomposition are content-addressable: two
//! isomorphic atoms have the same set of minimal triangulations up to a
//! vertex relabeling, so a *canonical form* — a relabeling that depends
//! only on the isomorphism class — is exactly the right cache key for
//! per-atom enumeration state (cf. Sulanke & Lutz's isomorphism-free
//! enumeration, which keys its generation on lexicographically minimal
//! canonical representatives).
//!
//! The algorithm is the classic individualization–refinement scheme:
//!
//! 1. **refinement** — vertices are partitioned by degree and the
//!    partition is refined by the multiset of neighbor colors until it
//!    stabilizes (1-dimensional Weisfeiler–Leman); every step is
//!    label-free, so the stabilized partition is an isomorphism invariant;
//! 2. **individualization** — if some color class holds several vertices,
//!    the search branches: each vertex of the first smallest class is made
//!    unique in turn and refinement continues. Leaves of this search are
//!    discrete partitions, i.e. candidate vertex orders;
//! 3. **certificate selection** — each leaf yields the adjacency bitstring
//!    of the relabeled graph; the lexicographically smallest bitstring
//!    seen is the canonical certificate. Whenever two leaves produce the
//!    same certificate, the permutation relating them is an automorphism,
//!    recorded as a generator; at each search node, cell vertices
//!    equivalent under the subgroup *fixing the individualized prefix
//!    pointwise* (the stabilizer — whole-group orbits would be unsound
//!    below the root) lead to identical subtrees, so only one per orbit
//!    is explored. This keeps highly symmetric graphs — cliques, cycles,
//!    grids — far away from the factorial worst case.
//!
//! The search is budgeted (`LEAF_BUDGET`): on pathological inputs it
//! stops early and returns the best certificate found so far. That form is
//! then *deterministic for a given labeled graph* but no longer guaranteed
//! to be invariant across relabelings — safe for caching (the certificate
//! always describes an isomorphic copy of the graph, so a collision of
//! keys still implies isomorphism up to hash collisions; a missed match
//! merely costs a cache miss), just not maximally sharing. Complete and
//! edgeless graphs short-circuit to the identity order.

use crate::graph::Graph;
use crate::vertexset::{Vertex, VertexSet};
use std::collections::BTreeMap;
use std::fmt;

/// Upper bound on explored leaves of the individualization–refinement
/// search. Orbit pruning keeps ordinary graphs orders of magnitude below
/// this; the budget only exists so adversarial strongly-regular-style
/// inputs degrade to a best-effort (still deterministic) form instead of
/// an exponential stall.
const LEAF_BUDGET: usize = 4096;

/// A content address for a graph's isomorphism class: a stable 128-bit
/// hash of the canonical certificate (vertex count, edge count, and the
/// adjacency bitstring of the canonically relabeled graph).
///
/// The hash is computed with a fixed FNV-1a variant, so keys are stable
/// across processes, platforms, and compiler versions — they can be
/// persisted (the on-disk atom cache of `mtr-cache` does).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CanonicalKey {
    hash: [u64; 2],
}

impl CanonicalKey {
    /// The raw 128 bits, high word first.
    pub fn to_words(self) -> [u64; 2] {
        self.hash
    }

    /// Rebuilds a key from its raw words (the on-disk cache format).
    pub fn from_words(words: [u64; 2]) -> Self {
        CanonicalKey { hash: words }
    }

    /// The key as 32 lowercase hex digits.
    pub fn to_hex(self) -> String {
        format!("{:016x}{:016x}", self.hash[0], self.hash[1])
    }
}

impl fmt::Debug for CanonicalKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CanonicalKey({})", self.to_hex())
    }
}

impl fmt::Display for CanonicalKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// The result of canonicalizing a graph: the content key plus the vertex
/// relabeling that realizes it.
#[derive(Clone, Debug)]
pub struct CanonicalForm {
    /// The 128-bit content address of the isomorphism class.
    pub key: CanonicalKey,
    /// `order[canonical] = original`: position `i` of the canonical graph
    /// is original vertex `order[i]`.
    pub order: Vec<Vertex>,
}

impl CanonicalForm {
    /// `inverse[original] = canonical` — the other direction of
    /// [`CanonicalForm::order`].
    pub fn inverse(&self) -> Vec<Vertex> {
        let mut inv = vec![0 as Vertex; self.order.len()];
        for (canonical, &original) in self.order.iter().enumerate() {
            inv[original as usize] = canonical as Vertex;
        }
        inv
    }
}

impl Graph {
    /// Returns a copy of the graph relabeled by `order` (`order[new] =
    /// old`): new vertices `u, v` are adjacent iff `order[u], order[v]`
    /// are adjacent here.
    ///
    /// # Panics
    /// Panics if `order` is not a permutation of `0..n`.
    pub fn relabeled(&self, order: &[Vertex]) -> Graph {
        assert_eq!(order.len(), self.n() as usize, "order must cover 0..n");
        let mut inv = vec![u32::MAX; self.n() as usize];
        for (new, &old) in order.iter().enumerate() {
            assert!(inv[old as usize] == u32::MAX, "order must be a permutation");
            inv[old as usize] = new as u32;
        }
        let mut g = Graph::new(self.n());
        for (u, v) in self.edges() {
            g.add_edge(inv[u as usize], inv[v as usize]);
        }
        g
    }

    /// Computes the canonical form of the graph: a vertex order depending
    /// (for all practical inputs — see the [module docs](self) on the leaf
    /// budget) only on the isomorphism class, plus the stable 128-bit
    /// [`CanonicalKey`] of the relabeled adjacency structure.
    ///
    /// Intended for small-to-medium graphs (decomposition atoms); the
    /// refinement is `O(n²)` per round and the backtracking search is
    /// pruned by discovered automorphism orbits.
    pub fn canonical_form(&self) -> CanonicalForm {
        let n = self.n() as usize;
        if n == 0 {
            return CanonicalForm {
                key: certificate_key(0, 0, &[]),
                order: Vec::new(),
            };
        }
        // Complete and edgeless graphs: every order yields the same
        // certificate, so the identity is canonical — and the search below
        // would waste its budget discovering the full symmetric group.
        let complete = self.m() == n * (n - 1) / 2;
        if complete || self.m() == 0 {
            let order: Vec<Vertex> = (0..self.n()).collect();
            let cert = certificate(self, &order);
            return CanonicalForm {
                key: certificate_key(self.n(), self.m(), &cert),
                order,
            };
        }

        let mut search = Search {
            graph: self,
            n,
            best_cert: None,
            best_order: Vec::new(),
            generators: Vec::new(),
            leaves: 0,
        };
        let initial = refine(self, initial_coloring(self));
        search.explore(initial, &mut Vec::new());
        let order = search.best_order;
        let cert = search.best_cert.expect("n > 0 produces at least one leaf");
        CanonicalForm {
            key: certificate_key(self.n(), self.m(), &cert),
            order,
        }
    }
}

// ---------------------------------------------------------------------------
// Refinement
// ---------------------------------------------------------------------------

/// Initial coloring: vertices ranked by degree.
fn initial_coloring(g: &Graph) -> Vec<u32> {
    let mut degrees: Vec<usize> = (0..g.n()).map(|v| g.degree(v)).collect();
    degrees.sort_unstable();
    degrees.dedup();
    (0..g.n())
        .map(|v| {
            degrees
                .binary_search(&g.degree(v))
                .expect("own degree is present") as u32
        })
        .collect()
}

/// One-dimensional Weisfeiler–Leman refinement to a fixpoint: each round
/// re-colors every vertex by `(old color, sorted multiset of neighbor
/// colors)` and re-ranks. All signatures are label-free, so isomorphic
/// graphs refine to corresponding colorings.
fn refine(g: &Graph, mut colors: Vec<u32>) -> Vec<u32> {
    let n = g.n() as usize;
    loop {
        let mut signatures: Vec<(u32, Vec<u32>)> = Vec::with_capacity(n);
        for v in 0..n {
            let mut nbr: Vec<u32> = g
                .neighbors(v as Vertex)
                .iter()
                .map(|w| colors[w as usize])
                .collect();
            nbr.sort_unstable();
            signatures.push((colors[v], nbr));
        }
        let mut ranked: Vec<&(u32, Vec<u32>)> = signatures.iter().collect();
        ranked.sort_unstable();
        ranked.dedup();
        let next: Vec<u32> = signatures
            .iter()
            .map(|s| ranked.binary_search(&s).expect("own signature") as u32)
            .collect();
        let classes_before = count_classes(&colors);
        let classes_after = count_classes(&next);
        colors = next;
        if classes_after == classes_before {
            return colors;
        }
    }
}

fn count_classes(colors: &[u32]) -> usize {
    let mut seen: Vec<u32> = colors.to_vec();
    seen.sort_unstable();
    seen.dedup();
    seen.len()
}

/// Individualizes `v` inside its color class (making it compare strictly
/// smaller than its former classmates) and re-ranks.
fn individualize(colors: &[u32], v: usize) -> Vec<u32> {
    // (color, 1) for everyone except (color, 0) for v, then re-ranked:
    // doubling leaves room for the split without collisions.
    colors
        .iter()
        .enumerate()
        .map(|(u, &c)| 2 * c + u32::from(u != v))
        .collect()
}

// ---------------------------------------------------------------------------
// Certificates
// ---------------------------------------------------------------------------

/// The adjacency bitstring of `g` relabeled by `order` (`order[new] =
/// old`), upper triangle in row-major order, packed into words.
fn certificate(g: &Graph, order: &[Vertex]) -> Vec<u64> {
    let n = order.len();
    let bits = n * n.saturating_sub(1) / 2;
    let mut words = vec![0u64; bits.div_ceil(64)];
    let mut idx = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            if g.has_edge(order[i], order[j]) {
                words[idx / 64] |= 1u64 << (idx % 64);
            }
            idx += 1;
        }
    }
    words
}

/// Stable 128-bit FNV-1a-style hash over `(n, m, certificate)`.
fn certificate_key(n: u32, m: usize, cert: &[u64]) -> CanonicalKey {
    const OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325;
    const OFFSET_B: u64 = 0x6c62_272e_07bb_0142;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let feed = |mut h: u64, word: u64| {
        for byte in word.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(PRIME);
        }
        h
    };
    let mut a = OFFSET_A;
    let mut b = OFFSET_B ^ 0x9e37_79b9_7f4a_7c15;
    a = feed(a, u64::from(n));
    b = feed(b, u64::from(n).rotate_left(17));
    a = feed(a, m as u64);
    b = feed(b, (m as u64).rotate_left(31));
    for &w in cert {
        a = feed(a, w);
        b = feed(b, w.rotate_left(13));
    }
    CanonicalKey { hash: [a, b] }
}

// ---------------------------------------------------------------------------
// The individualization–refinement search
// ---------------------------------------------------------------------------

/// Union–find over vertices, tracking the automorphism orbits discovered
/// so far.
struct DisjointSets {
    parent: Vec<usize>,
}

impl DisjointSets {
    fn new(n: usize) -> Self {
        DisjointSets {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

struct Search<'g> {
    graph: &'g Graph,
    n: usize,
    best_cert: Option<Vec<u64>>,
    /// `best_order[canonical] = original` for the best certificate so far.
    best_order: Vec<Vertex>,
    /// Automorphism generators discovered so far (`g[v] = image of v`),
    /// each derived from a pair of leaves with equal certificates.
    generators: Vec<Vec<Vertex>>,
    leaves: usize,
}

impl Search<'_> {
    /// First color class with more than one vertex, smallest class first
    /// (ties broken by color rank) — an isomorphism-invariant choice.
    fn target_cell(&self, colors: &[u32]) -> Option<Vec<usize>> {
        let mut by_color: Vec<(u32, Vec<usize>)> = Vec::new();
        for (v, &c) in colors.iter().enumerate() {
            match by_color.binary_search_by_key(&c, |e| e.0) {
                Ok(i) => by_color[i].1.push(v),
                Err(i) => by_color.insert(i, (c, vec![v])),
            }
        }
        by_color
            .into_iter()
            .filter(|(_, cell)| cell.len() > 1)
            .min_by_key(|(c, cell)| (cell.len(), *c))
            .map(|(_, cell)| cell)
    }

    /// Orbits of the subgroup generated by the discovered automorphisms
    /// that fix every vertex of `prefix` pointwise. Pruning below the root
    /// must use these *stabilizer* orbits, not whole-group orbits: an
    /// automorphism that moves an already-individualized vertex does not
    /// map the current subtree onto a sibling, so its orbit merges are not
    /// evidence of subtree equivalence at this node.
    fn stabilizer_orbits(&self, prefix: &[Vertex]) -> DisjointSets {
        let mut orbits = DisjointSets::new(self.n);
        for g in &self.generators {
            if prefix.iter().all(|&v| g[v as usize] == v) {
                for (v, &image) in g.iter().enumerate() {
                    orbits.union(v, image as usize);
                }
            }
        }
        orbits
    }

    fn explore(&mut self, colors: Vec<u32>, prefix: &mut Vec<Vertex>) {
        if self.leaves >= LEAF_BUDGET {
            return;
        }
        let Some(cell) = self.target_cell(&colors) else {
            // Discrete partition: a leaf. colors are ranks 0..n.
            self.leaves += 1;
            let mut order = vec![0 as Vertex; self.n];
            for (v, &c) in colors.iter().enumerate() {
                order[c as usize] = v as Vertex;
            }
            let cert = certificate(self.graph, &order);
            match &self.best_cert {
                None => {
                    self.best_cert = Some(cert);
                    self.best_order = order;
                }
                Some(best) => match cert.cmp(best) {
                    std::cmp::Ordering::Less => {
                        self.best_cert = Some(cert);
                        self.best_order = order;
                    }
                    std::cmp::Ordering::Equal => {
                        // Equal certificates: `order ∘ best_order⁻¹` maps
                        // the graph onto itself — an automorphism. Record
                        // it as a generator for stabilizer-orbit pruning.
                        let mut g = vec![0 as Vertex; self.n];
                        for (&b, &o) in self.best_order.iter().zip(&order) {
                            g[b as usize] = o;
                        }
                        self.generators.push(g);
                    }
                    std::cmp::Ordering::Greater => {}
                },
            }
            return;
        };
        // Branch over the cell, one representative per stabilizer orbit:
        // two vertices equivalent under an automorphism fixing the current
        // prefix produce automorphic subtrees with identical certificate
        // sets. Orbits are recomputed per candidate so generators found in
        // earlier sibling branches prune later ones.
        let mut tried: Vec<Vertex> = Vec::new();
        for &v in &cell {
            let mut orbits = self.stabilizer_orbits(prefix);
            if tried
                .iter()
                .any(|&t| orbits.find(t as usize) == orbits.find(v))
            {
                continue;
            }
            tried.push(v as Vertex);
            let refined = refine(self.graph, individualize(&colors, v));
            prefix.push(v as Vertex);
            self.explore(refined, prefix);
            prefix.pop();
            if self.leaves >= LEAF_BUDGET {
                return;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The automorphism group
// ---------------------------------------------------------------------------

/// Cap on the breadth-first set-orbit closure used by
/// [`AutGroup::canonicalize_vertex_set`]. Orbits of the vertex sets that
/// arise in enumeration (separators, constraint families) are tiny — at
/// most the group order, usually far less — but a set orbit under a large
/// symmetric group can be `C(n, k)`-sized, so the walk is budgeted. Within
/// budget the result is the exact orbit minimum; beyond it, a
/// deterministic best-effort representative.
const SET_ORBIT_CAP: usize = 4096;

/// `n!` as a saturating `u128` (saturates from `n = 35`).
fn factorial_saturating(n: usize) -> u128 {
    (2..=n as u128).fold(1u128, |acc, k| acc.saturating_mul(k))
}

fn identity_perm(n: usize) -> Vec<Vertex> {
    (0..n as u32).collect()
}

fn is_identity_perm(p: &[Vertex]) -> bool {
    p.iter().enumerate().all(|(i, &image)| image as usize == i)
}

/// `(a ∘ b)[v] = a[b[v]]` — apply `b` first, then `a`.
fn compose_perms(a: &[Vertex], b: &[Vertex]) -> Vec<Vertex> {
    b.iter().map(|&v| a[v as usize]).collect()
}

fn invert_perm(p: &[Vertex]) -> Vec<Vertex> {
    let mut inv = vec![0 as Vertex; p.len()];
    for (v, &image) in p.iter().enumerate() {
        inv[image as usize] = v as Vertex;
    }
    inv
}

/// One level of a Schreier–Sims stabilizer chain: a base point, the
/// generators known to fix all earlier base points, and the transversal
/// mapping each point of the base point's orbit to a coset representative.
struct ChainLevel {
    point: usize,
    gens: Vec<Vec<Vertex>>,
    transversal: BTreeMap<usize, Vec<Vertex>>,
}

/// Deterministic incremental Schreier–Sims. Sifting every discovered
/// generator (and, recursively, every Schreier generator) through the
/// chain makes each level's generator set generate the full stabilizer of
/// the earlier base points, so the product of transversal sizes is the
/// exact order of the generated group (orbit–stabilizer theorem).
struct StabChain {
    n: usize,
    levels: Vec<ChainLevel>,
}

impl StabChain {
    fn new(n: usize) -> Self {
        StabChain {
            n,
            levels: Vec::new(),
        }
    }

    fn order(&self) -> u128 {
        self.levels.iter().fold(1u128, |acc, level| {
            acc.saturating_mul(level.transversal.len() as u128)
        })
    }

    /// Reduces `g` through the chain. `Some((level, residue))` when the
    /// reduced permutation escapes the transversal at `level`; `None` when
    /// `g` is already in the generated group.
    fn strip(&self, mut g: Vec<Vertex>) -> Option<(usize, Vec<Vertex>)> {
        for (i, level) in self.levels.iter().enumerate() {
            let image = g[level.point] as usize;
            match level.transversal.get(&image) {
                Some(rep) => g = compose_perms(&invert_perm(rep), &g),
                None => return Some((i, g)),
            }
        }
        if is_identity_perm(&g) {
            None
        } else {
            Some((self.levels.len(), g))
        }
    }

    fn insert(&mut self, g: Vec<Vertex>) {
        let Some((level, residue)) = self.strip(g) else {
            return;
        };
        if level == self.levels.len() {
            let point = residue
                .iter()
                .enumerate()
                .find(|&(v, &image)| image as usize != v)
                .map(|(v, _)| v)
                .expect("a non-identity residue moves some point");
            let mut transversal = BTreeMap::new();
            transversal.insert(point, identity_perm(self.n));
            self.levels.push(ChainLevel {
                point,
                gens: Vec::new(),
                transversal,
            });
        }
        self.levels[level].gens.push(residue);
        // The residue fixes every earlier base point, so it is a member of
        // each earlier level's stabilizer as well — and although it fixes
        // those base points, it can still extend their orbits through
        // other orbit members. Every level up to the insertion point must
        // therefore be rebuilt, deepest first.
        for i in (0..=level).rev() {
            self.rebuild(i);
        }
    }

    /// Recomputes the orbit/transversal at `level` and sifts the Schreier
    /// generators. The stabilizer of the first `level` base points is
    /// generated by this level's residues *plus every deeper level's* —
    /// deeper residues fix more base points, hence also the first `level`
    /// of them — so the orbit walk must range over all of them.
    fn rebuild(&mut self, level: usize) {
        let point = self.levels[level].point;
        let gens: Vec<Vec<Vertex>> = self.levels[level..]
            .iter()
            .flat_map(|l| l.gens.iter().cloned())
            .collect();
        let mut transversal: BTreeMap<usize, Vec<Vertex>> = BTreeMap::new();
        transversal.insert(point, identity_perm(self.n));
        let mut frontier = vec![point];
        while let Some(delta) = frontier.pop() {
            let rep = transversal[&delta].clone();
            for s in &gens {
                let image = s[delta] as usize;
                if let std::collections::btree_map::Entry::Vacant(e) = transversal.entry(image) {
                    e.insert(compose_perms(s, &rep));
                    frontier.push(image);
                }
            }
        }
        let mut schreier = Vec::new();
        for (&delta, rep) in &transversal {
            for s in &gens {
                let image = s[delta] as usize;
                let lift = compose_perms(s, rep);
                let sg = compose_perms(&invert_perm(&transversal[&image]), &lift);
                if !is_identity_perm(&sg) {
                    schreier.push(sg);
                }
            }
        }
        self.levels[level].transversal = transversal;
        for sg in schreier {
            self.insert(sg);
        }
    }
}

/// The automorphism group of a graph, as discovered by the
/// individualization–refinement search of [`Graph::canonical_form`].
///
/// The generators are the automorphisms recorded at certificate-equal
/// leaves of the search. When the search completes within its leaf budget
/// these generate the full automorphism group; on a budget-truncated
/// search they generate a subgroup. Every consumer in this workspace
/// (orbit-canonical subproblem keys, modulo-symmetry dedup, branch
/// pruning) is sound for an arbitrary subgroup — a smaller group merely
/// merges fewer orbits — so the API reports the *discovered* group
/// honestly rather than promising `Aut(G)`.
#[derive(Clone, Debug)]
pub struct AutGroup {
    n: u32,
    generators: Vec<Vec<Vertex>>,
    order: u128,
    orbits: Vec<Vec<Vertex>>,
}

impl AutGroup {
    fn from_generators(n: u32, mut generators: Vec<Vec<Vertex>>, order: Option<u128>) -> AutGroup {
        generators.retain(|g| !is_identity_perm(g));
        generators.sort_unstable();
        generators.dedup();
        let order = order.unwrap_or_else(|| {
            let mut chain = StabChain::new(n as usize);
            for g in &generators {
                chain.insert(g.clone());
            }
            chain.order()
        });
        let mut sets = DisjointSets::new(n as usize);
        for g in &generators {
            for (v, &image) in g.iter().enumerate() {
                sets.union(v, image as usize);
            }
        }
        let mut by_root: BTreeMap<usize, Vec<Vertex>> = BTreeMap::new();
        for v in 0..n as usize {
            by_root.entry(sets.find(v)).or_default().push(v as Vertex);
        }
        let orbits = by_root.into_values().collect();
        AutGroup {
            n,
            generators,
            order,
            orbits,
        }
    }

    /// Number of vertices of the underlying graph.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// The discovered generators, each as `g[v] = image of v`. Identity
    /// permutations are never included, so a trivial (discovered) group
    /// has no generators.
    pub fn generators(&self) -> &[Vec<Vertex>] {
        &self.generators
    }

    /// Exact order of the group *generated by the discovered generators*
    /// (Schreier–Sims), saturating at `u128::MAX`.
    pub fn order(&self) -> u128 {
        self.order
    }

    /// Whether no non-trivial automorphism was discovered.
    pub fn is_trivial(&self) -> bool {
        self.generators.is_empty()
    }

    /// The vertex orbits of the discovered group, each sorted increasing,
    /// ordered by smallest member. A trivial group has `n` singleton
    /// orbits.
    pub fn vertex_orbits(&self) -> &[Vec<Vertex>] {
        &self.orbits
    }

    /// Number of vertex orbits (`n` for a trivial group, `1` for a
    /// vertex-transitive discovered group).
    pub fn orbit_count(&self) -> usize {
        self.orbits.len()
    }

    /// Explicitly enumerates the group elements (including the identity)
    /// by breadth-first closure of the generators. Returns `None` when the
    /// group has more than `cap` elements — callers that need the list
    /// bounded (e.g. per-subproblem canonicalization) pick the cap.
    pub fn elements(&self, cap: usize) -> Option<Vec<Vec<Vertex>>> {
        let id = identity_perm(self.n as usize);
        let mut seen: Vec<Vec<Vertex>> = vec![id.clone()];
        let mut frontier = vec![id];
        while let Some(p) = frontier.pop() {
            for g in &self.generators {
                let q = compose_perms(g, &p);
                if !seen.contains(&q) {
                    if seen.len() >= cap {
                        return None;
                    }
                    seen.push(q.clone());
                    frontier.push(q);
                }
            }
        }
        seen.sort_unstable();
        Some(seen)
    }

    /// The lexicographically smallest image of `s` under the discovered
    /// group — a canonical representative of the set's orbit, suitable as
    /// a dedup/cache key (`canonicalize_vertex_set(σ(s)) ==
    /// canonicalize_vertex_set(s)` for every discovered `σ`).
    ///
    /// Computed by closing the set's orbit under the generators, which is
    /// bounded by the orbit size, not the group order. The walk is capped
    /// (at 4096 visited images); past the cap the result is deterministic
    /// for the given input but may not be the global orbit minimum.
    pub fn canonicalize_vertex_set(&self, s: &VertexSet) -> VertexSet {
        if self.generators.is_empty() {
            return s.clone();
        }
        let mut best = s.clone();
        let mut seen: Vec<VertexSet> = vec![s.clone()];
        let mut frontier = vec![s.clone()];
        while let Some(cur) = frontier.pop() {
            for g in &self.generators {
                let image = VertexSet::from_iter(s.universe(), cur.iter().map(|v| g[v as usize]));
                if !seen.contains(&image) {
                    if seen.len() >= SET_ORBIT_CAP {
                        return best;
                    }
                    if image < best {
                        best = image.clone();
                    }
                    seen.push(image.clone());
                    frontier.push(image);
                }
            }
        }
        best
    }
}

impl Graph {
    /// Discovers the automorphism group of the graph by running the same
    /// budgeted individualization–refinement search as
    /// [`Graph::canonical_form`] and collecting the automorphisms recorded
    /// at certificate-equal leaves. See [`AutGroup`] for the discovered-
    /// subgroup caveat; complete and edgeless graphs short-circuit to the
    /// full symmetric group.
    pub fn automorphisms(&self) -> AutGroup {
        let n = self.n() as usize;
        if n <= 1 {
            return AutGroup::from_generators(self.n(), Vec::new(), Some(1));
        }
        let complete = self.m() == n * (n - 1) / 2;
        if complete || self.m() == 0 {
            // Every permutation is an automorphism: generate S_n by
            // adjacent transpositions instead of burning the search budget.
            let generators: Vec<Vec<Vertex>> = (0..n - 1)
                .map(|i| {
                    let mut p = identity_perm(n);
                    p.swap(i, i + 1);
                    p
                })
                .collect();
            return AutGroup::from_generators(self.n(), generators, Some(factorial_saturating(n)));
        }
        let mut search = Search {
            graph: self,
            n,
            best_cert: None,
            best_order: Vec::new(),
            generators: Vec::new(),
            leaves: 0,
        };
        let initial = refine(self, initial_coloring(self));
        search.explore(initial, &mut Vec::new());
        AutGroup::from_generators(self.n(), search.generators, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example_graph;

    /// A deterministic pseudo-random permutation of `0..n` (no external
    /// RNG in this crate).
    fn permutation(n: u32, seed: u64) -> Vec<Vertex> {
        let mut order: Vec<Vertex> = (0..n).collect();
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        for i in (1..n as usize).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let j = (state % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        order
    }

    fn key_of(g: &Graph) -> CanonicalKey {
        g.canonical_form().key
    }

    #[test]
    fn relabeled_permutes_edges() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let order = vec![3, 2, 1, 0];
        let h = g.relabeled(&order);
        assert_eq!(h.m(), 3);
        assert!(h.has_edge(3, 2)); // old (0,1)
        assert!(h.has_edge(2, 1)); // old (1,2)
        assert!(h.has_edge(1, 0)); // old (2,3)
    }

    #[test]
    fn canonical_order_realizes_the_key() {
        // Relabeling a graph by its canonical order and canonicalizing
        // again is a fixpoint: same key, and the relabeled graph is
        // isomorphic to the original via `order`.
        let g = paper_example_graph();
        let form = g.canonical_form();
        let canon = g.relabeled(&form.order);
        assert_eq!(canon.m(), g.m());
        assert_eq!(key_of(&canon), form.key);
        // The inverse really inverts.
        let inv = form.inverse();
        for v in 0..g.n() {
            assert_eq!(form.order[inv[v as usize] as usize], v);
        }
    }

    #[test]
    fn isomorphic_graphs_share_a_key() {
        let graphs = vec![
            paper_example_graph(),
            Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]),
            Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]),
            Graph::complete(5),
            Graph::new(4),
            Graph::from_edges(7, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (0, 6)]),
            crate::graph::Graph::from_edges(
                8,
                &[
                    (0, 1),
                    (1, 2),
                    (2, 0),
                    (3, 4),
                    (4, 5),
                    (5, 3),
                    (2, 3),
                    (6, 7),
                ],
            ),
        ];
        for g in &graphs {
            let base = key_of(g);
            for seed in 1..6u64 {
                let order = permutation(g.n(), seed);
                let h = g.relabeled(&order);
                assert_eq!(
                    key_of(&h),
                    base,
                    "relabeling by {order:?} changed the key of {g:?}"
                );
            }
        }
    }

    #[test]
    fn non_isomorphic_graphs_differ() {
        let path = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let star = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let cycle = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_ne!(key_of(&path), key_of(&star));
        assert_ne!(key_of(&path), key_of(&cycle));
        assert_ne!(key_of(&star), key_of(&cycle));
        // Same n and m, different structure: triangle+isolated vs path.
        let tri = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0)]);
        assert_ne!(key_of(&tri), key_of(&path));
    }

    #[test]
    fn symmetric_graphs_stay_within_budget() {
        // Cliques, cycles, bipartite complete graphs: factorial-sized
        // automorphism groups that orbit pruning must collapse.
        let k12 = Graph::complete(12);
        let _ = k12.canonical_form();
        let c20 = Graph::from_edges(20, &(0..20).map(|i| (i, (i + 1) % 20)).collect::<Vec<_>>());
        let _ = c20.canonical_form();
        let mut k55 = Graph::new(10);
        for u in 0..5 {
            for v in 5..10 {
                k55.add_edge(u, v);
            }
        }
        let form = k55.canonical_form();
        for seed in 1..4u64 {
            let h = k55.relabeled(&permutation(10, seed));
            assert_eq!(key_of(&h), form.key);
        }
    }

    #[test]
    fn strongly_regular_graphs_stay_invariant() {
        // Petersen (strongly regular, vertex- and edge-transitive) and the
        // 3-cube: the cases where pruning on whole-group orbits instead of
        // prefix-stabilizer orbits could miss the minimal leaf in one
        // labeling but not another.
        let petersen = Graph::from_edges(
            10,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 0),
                (5, 7),
                (7, 9),
                (9, 6),
                (6, 8),
                (8, 5),
                (0, 5),
                (1, 6),
                (2, 7),
                (3, 8),
                (4, 9),
            ],
        );
        let q3 = Graph::from_edges(
            8,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 4),
                (0, 4),
                (1, 5),
                (2, 6),
                (3, 7),
            ],
        );
        for g in [&petersen, &q3] {
            let base = key_of(g);
            for seed in 1..12u64 {
                let h = g.relabeled(&permutation(g.n(), seed));
                assert_eq!(key_of(&h), base);
            }
        }
    }

    #[test]
    fn empty_and_tiny_graphs() {
        assert_eq!(key_of(&Graph::new(0)), key_of(&Graph::new(0)));
        assert_ne!(key_of(&Graph::new(0)), key_of(&Graph::new(1)));
        assert_ne!(key_of(&Graph::new(2)), key_of(&Graph::complete(2)));
        let one = Graph::new(1);
        let form = one.canonical_form();
        assert_eq!(form.order, vec![0]);
    }

    #[test]
    fn aut_group_orders_of_known_graphs() {
        // Path P3: exactly the end-swap, order 2, orbits {0,2},{1}.
        let p3 = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let aut = p3.automorphisms();
        assert_eq!(aut.order(), 2);
        assert_eq!(aut.orbit_count(), 2);
        assert!(!aut.is_trivial());
        // C4: dihedral group of order 8, vertex-transitive.
        let c4 = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let aut = c4.automorphisms();
        assert_eq!(aut.order(), 8);
        assert_eq!(aut.orbit_count(), 1);
        // C6: dihedral group of order 12.
        let c6 = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        assert_eq!(c6.automorphisms().order(), 12);
        // Complete graph short-circuit: S_5, order 120, one orbit.
        let k5 = Graph::complete(5);
        let aut = k5.automorphisms();
        assert_eq!(aut.order(), 120);
        assert_eq!(aut.orbit_count(), 1);
        // Edgeless short-circuit.
        assert_eq!(Graph::new(4).automorphisms().order(), 24);
        // An asymmetric graph: trivial group, singleton orbits.
        // P5 plus a vertex hung off {1, 2}: the leaf 0 sits on a degree-3
        // vertex, the leaf 4 on a degree-2 vertex, which forces every
        // degree-preserving map to the identity.
        let asym = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (1, 5), (2, 5)]);
        let aut = asym.automorphisms();
        assert_eq!(aut.order(), 1);
        assert!(aut.is_trivial());
        assert_eq!(aut.orbit_count(), 6);
        // Tiny graphs.
        assert_eq!(Graph::new(0).automorphisms().order(), 1);
        assert_eq!(Graph::new(1).automorphisms().order(), 1);
    }

    #[test]
    fn aut_group_order_divides_known_order_on_transitive_graphs() {
        // Petersen: |Aut| = 120; the 3-cube: |Aut| = 48. The discovered
        // group is allowed to be a subgroup (see AutGroup docs), but its
        // order must divide the true order and must be non-trivial on
        // graphs this symmetric.
        let petersen = Graph::from_edges(
            10,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 0),
                (5, 7),
                (7, 9),
                (9, 6),
                (6, 8),
                (8, 5),
                (0, 5),
                (1, 6),
                (2, 7),
                (3, 8),
                (4, 9),
            ],
        );
        let aut = petersen.automorphisms();
        assert!(aut.order() > 1);
        assert_eq!(
            120 % aut.order(),
            0,
            "order {} must divide 120",
            aut.order()
        );
        assert_eq!(aut.orbit_count(), 1, "Petersen is vertex-transitive");
    }

    #[test]
    fn aut_order_matches_element_closure_on_the_cube() {
        // Regression: the stabilizer chain used to compute each level's
        // orbit from that level's own residues only, ignoring deeper
        // levels' — which also fix the earlier base points and can extend
        // the orbit. On Q3 that undercounted the order as 32, which is
        // not even a divisor of |Aut(Q3)| = 48. The chain's product must
        // equal the size of the generators' explicit closure.
        let mut edges = vec![];
        for u in 0u32..8 {
            for b in 0..3 {
                let v = u ^ (1 << b);
                if u < v {
                    edges.push((u, v));
                }
            }
        }
        let aut = Graph::from_edges(8, &edges).automorphisms();
        let elements = aut.elements(512).expect("|Aut(Q3)| fits the cap");
        assert_eq!(aut.order(), elements.len() as u128);
        assert_eq!(aut.order(), 48);
    }

    #[test]
    fn aut_generators_are_automorphisms() {
        let g = paper_example_graph();
        let aut = g.automorphisms();
        for gen in aut.generators() {
            for (u, v) in g.edges() {
                assert!(
                    g.has_edge(gen[u as usize], gen[v as usize]),
                    "generator {gen:?} does not preserve edge ({u},{v})"
                );
            }
        }
    }

    #[test]
    fn aut_elements_closure_and_cap() {
        let c4 = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let aut = c4.automorphisms();
        let elements = aut.elements(64).expect("order 8 fits the cap");
        assert_eq!(elements.len(), 8);
        assert!(elements.iter().any(|p| is_identity_perm(p)));
        assert!(aut.elements(4).is_none(), "cap must be honored");
        // Trivial group: just the identity.
        let p2 = Graph::from_edges(3, &[(0, 1)]);
        let singleton = Graph::from_edges(3, &[(0, 1)]).automorphisms();
        let _ = p2;
        assert!(singleton.elements(8).is_some());
    }

    #[test]
    fn canonicalize_vertex_set_is_orbit_invariant() {
        let c6 = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let aut = c6.automorphisms();
        let elements = aut.elements(64).expect("order 12 fits");
        let s = VertexSet::from_slice(6, &[0, 2]);
        let canon = aut.canonicalize_vertex_set(&s);
        for sigma in &elements {
            let image = VertexSet::from_iter(6, s.iter().map(|v| sigma[v as usize]));
            assert_eq!(
                aut.canonicalize_vertex_set(&image),
                canon,
                "σ-image {image:?} canonicalized differently"
            );
        }
        // The canonical form is itself a member of the orbit.
        assert!(elements
            .iter()
            .any(|sigma| VertexSet::from_iter(6, s.iter().map(|v| sigma[v as usize])) == canon));
    }

    #[test]
    fn keys_are_stable_across_calls_and_hex_renders() {
        let g = paper_example_graph();
        let a = key_of(&g);
        let b = key_of(&g);
        assert_eq!(a, b);
        let hex = a.to_hex();
        assert_eq!(hex.len(), 32);
        assert!(hex.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(CanonicalKey::from_words(a.to_words()), a);
    }
}
