//! Dense bitset over the vertices of a fixed universe `0..n`.
//!
//! Every algorithm in this workspace (minimal separators, blocks, potential
//! maximal cliques, bags of tree decompositions) manipulates subsets of the
//! vertex set of one host graph. [`VertexSet`] is the shared representation:
//! a heap-allocated bitset whose universe size is fixed at construction.
//!
//! Operations between two sets require the same universe size; this is
//! checked with `debug_assert!` so release builds pay no cost.

use std::fmt;
use std::hash::{Hash, Hasher};

/// A vertex is a dense index into the host graph's vertex range `0..n`.
pub type Vertex = u32;

const BITS: usize = 64;

/// A set of vertices of a fixed universe `0..universe()`.
///
/// The set is backed by `⌈n/64⌉` machine words. Cloning is an allocation;
/// the enumeration algorithms reuse scratch sets where that matters.
#[derive(Clone, PartialEq, Eq)]
pub struct VertexSet {
    universe: u32,
    words: Box<[u64]>,
}

#[inline]
fn word_count(universe: u32) -> usize {
    (universe as usize).div_ceil(BITS)
}

impl VertexSet {
    /// Creates an empty set over the universe `0..universe`.
    pub fn empty(universe: u32) -> Self {
        VertexSet {
            universe,
            words: vec![0u64; word_count(universe)].into_boxed_slice(),
        }
    }

    /// Creates the full set `{0, …, universe-1}`.
    pub fn full(universe: u32) -> Self {
        let mut s = Self::empty(universe);
        if let Some((last, rest)) = s.words.split_last_mut() {
            for w in rest {
                *w = !0u64;
            }
            let tail = universe as usize % BITS;
            *last = if tail == 0 { !0u64 } else { (1u64 << tail) - 1 };
        }
        s
    }

    /// Creates a singleton set `{v}`.
    pub fn singleton(universe: u32, v: Vertex) -> Self {
        let mut s = Self::empty(universe);
        s.insert(v);
        s
    }

    /// Builds a set from an iterator of vertices.
    pub fn from_iter<I: IntoIterator<Item = Vertex>>(universe: u32, iter: I) -> Self {
        let mut s = Self::empty(universe);
        for v in iter {
            s.insert(v);
        }
        s
    }

    /// Builds a set from a slice of vertices.
    pub fn from_slice(universe: u32, vs: &[Vertex]) -> Self {
        Self::from_iter(universe, vs.iter().copied())
    }

    /// The size of the universe this set ranges over.
    #[inline]
    pub fn universe(&self) -> u32 {
        self.universe
    }

    /// Number of vertices in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` when the set has no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, v: Vertex) -> bool {
        debug_assert!(
            v < self.universe,
            "vertex {v} outside universe {}",
            self.universe
        );
        let (w, b) = (v as usize / BITS, v as usize % BITS);
        (self.words[w] >> b) & 1 == 1
    }

    /// Inserts a vertex; returns `true` if it was newly added.
    #[inline]
    pub fn insert(&mut self, v: Vertex) -> bool {
        debug_assert!(
            v < self.universe,
            "vertex {v} outside universe {}",
            self.universe
        );
        let (w, b) = (v as usize / BITS, v as usize % BITS);
        let had = (self.words[w] >> b) & 1 == 1;
        self.words[w] |= 1 << b;
        !had
    }

    /// Removes a vertex; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, v: Vertex) -> bool {
        debug_assert!(
            v < self.universe,
            "vertex {v} outside universe {}",
            self.universe
        );
        let (w, b) = (v as usize / BITS, v as usize % BITS);
        let had = (self.words[w] >> b) & 1 == 1;
        self.words[w] &= !(1 << b);
        had
    }

    /// Overwrites this set with the contents of `other` (same universe)
    /// without reallocating — the cheap path for scratch-set reuse.
    #[inline]
    pub fn copy_from(&mut self, other: &VertexSet) {
        debug_assert_eq!(self.universe, other.universe);
        self.words.copy_from_slice(&other.words);
    }

    /// Removes all vertices.
    pub fn clear(&mut self) {
        for w in self.words.iter_mut() {
            *w = 0;
        }
    }

    /// In-place union.
    #[inline]
    pub fn union_with(&mut self, other: &VertexSet) {
        debug_assert_eq!(self.universe, other.universe);
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= *b;
        }
    }

    /// In-place intersection.
    #[inline]
    pub fn intersect_with(&mut self, other: &VertexSet) {
        debug_assert_eq!(self.universe, other.universe);
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= *b;
        }
    }

    /// In-place set difference (`self \ other`).
    #[inline]
    pub fn difference_with(&mut self, other: &VertexSet) {
        debug_assert_eq!(self.universe, other.universe);
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= !*b;
        }
    }

    /// Returns the union as a new set.
    pub fn union(&self, other: &VertexSet) -> VertexSet {
        let mut s = self.clone();
        s.union_with(other);
        s
    }

    /// Returns the intersection as a new set.
    pub fn intersection(&self, other: &VertexSet) -> VertexSet {
        let mut s = self.clone();
        s.intersect_with(other);
        s
    }

    /// Returns the set difference `self \ other` as a new set.
    pub fn difference(&self, other: &VertexSet) -> VertexSet {
        let mut s = self.clone();
        s.difference_with(other);
        s
    }

    /// Returns the complement within the universe.
    pub fn complement(&self) -> VertexSet {
        let mut s = Self::empty(self.universe);
        for (i, (a, b)) in s.words.iter_mut().zip(self.words.iter()).enumerate() {
            *a = !*b;
            // Mask off bits beyond the universe in the last word.
            let base = i * BITS;
            if base + BITS > self.universe as usize {
                let valid = self.universe as usize - base;
                if valid == 0 {
                    *a = 0;
                } else if valid < BITS {
                    *a &= (1u64 << valid) - 1;
                }
            }
        }
        s
    }

    /// `true` iff the two sets share no vertex.
    #[inline]
    pub fn is_disjoint(&self, other: &VertexSet) -> bool {
        debug_assert_eq!(self.universe, other.universe);
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & b == 0)
    }

    /// `true` iff `self ⊆ other`.
    #[inline]
    pub fn is_subset_of(&self, other: &VertexSet) -> bool {
        debug_assert_eq!(self.universe, other.universe);
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & !b == 0)
    }

    /// `true` iff `self ⊆ other` and `self ≠ other`.
    pub fn is_proper_subset_of(&self, other: &VertexSet) -> bool {
        self.is_subset_of(other) && self != other
    }

    /// `true` iff `self ⊇ other`.
    #[inline]
    pub fn is_superset_of(&self, other: &VertexSet) -> bool {
        other.is_subset_of(self)
    }

    /// Number of vertices in the intersection, without materializing it.
    #[inline]
    pub fn intersection_len(&self, other: &VertexSet) -> usize {
        debug_assert_eq!(self.universe, other.universe);
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// `true` iff the intersection is non-empty.
    #[inline]
    pub fn intersects(&self, other: &VertexSet) -> bool {
        !self.is_disjoint(other)
    }

    /// The smallest vertex of the set, if any. (Named to avoid clashing with `Ord::min`.)
    pub fn min_vertex(&self) -> Option<Vertex> {
        for (i, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some((i * BITS + w.trailing_zeros() as usize) as Vertex);
            }
        }
        None
    }

    /// The largest vertex of the set, if any.
    pub fn max_vertex(&self) -> Option<Vertex> {
        for (i, &w) in self.words.iter().enumerate().rev() {
            if w != 0 {
                return Some((i * BITS + (BITS - 1 - w.leading_zeros() as usize)) as Vertex);
            }
        }
        None
    }

    /// Returns a copy of this set embedded into a (possibly larger) universe.
    ///
    /// Panics if any member would fall outside the new universe.
    pub fn resized(&self, new_universe: u32) -> VertexSet {
        let mut s = VertexSet::empty(new_universe);
        for v in self.iter() {
            assert!(
                v < new_universe,
                "vertex {v} does not fit in universe {new_universe}"
            );
            s.insert(v);
        }
        s
    }

    /// Iterates over the members in increasing order.
    pub fn iter(&self) -> VertexSetIter<'_> {
        VertexSetIter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Collects the members into a sorted `Vec`.
    pub fn to_vec(&self) -> Vec<Vertex> {
        self.iter().collect()
    }
}

impl fmt::Debug for VertexSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl Hash for VertexSet {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // The universe is implied by context (one host graph per computation),
        // so only the word content participates in the hash.
        self.words.hash(state);
    }
}

impl PartialOrd for VertexSet {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for VertexSet {
    /// Lexicographic order on the word representation. This is an arbitrary
    /// but total order, used only to canonicalize collections of sets.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.words
            .iter()
            .cmp(other.words.iter())
            .then(self.universe.cmp(&other.universe))
    }
}

/// Iterator over the members of a [`VertexSet`] in increasing order.
pub struct VertexSetIter<'a> {
    set: &'a VertexSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for VertexSetIter<'_> {
    type Item = Vertex;

    fn next(&mut self) -> Option<Vertex> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some((self.word_idx * BITS + bit) as Vertex);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

impl<'a> IntoIterator for &'a VertexSet {
    type Item = Vertex;
    type IntoIter = VertexSetIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let e = VertexSet::empty(70);
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        let f = VertexSet::full(70);
        assert_eq!(f.len(), 70);
        assert!(f.contains(0));
        assert!(f.contains(69));
        assert_eq!(f.complement(), e);
        assert_eq!(e.complement(), f);
    }

    #[test]
    fn full_is_exact_at_word_boundaries() {
        // The word-filling fast path must match bit-by-bit construction
        // exactly around the 64-bit word boundary.
        for n in [0u32, 1, 63, 64, 65, 127, 128, 129] {
            let fast = VertexSet::full(n);
            let slow = VertexSet::from_iter(n, 0..n);
            assert_eq!(fast, slow, "universe {n}");
            assert_eq!(fast.len(), n as usize, "universe {n}");
            if n > 0 {
                assert!(fast.contains(0));
                assert!(fast.contains(n - 1));
            }
            assert!(fast.complement().is_empty(), "universe {n}");
            // No stray bits beyond the universe: the complement within a
            // larger embedding must contain exactly the missing vertices.
            let resized = fast.resized(n + 64);
            assert_eq!(resized.len(), n as usize);
        }
    }

    #[test]
    fn copy_from_overwrites_in_place() {
        let a = VertexSet::from_slice(130, &[0, 64, 129]);
        let mut b = VertexSet::from_slice(130, &[5, 6, 7]);
        b.copy_from(&a);
        assert_eq!(a, b);
        assert_eq!(b.to_vec(), vec![0, 64, 129]);
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = VertexSet::empty(130);
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.insert(127));
        assert!(s.insert(128));
        assert!(s.contains(5));
        assert!(s.contains(127));
        assert!(s.contains(128));
        assert!(!s.contains(6));
        assert_eq!(s.len(), 3);
        assert!(s.remove(127));
        assert!(!s.remove(127));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn set_algebra() {
        let a = VertexSet::from_slice(10, &[1, 2, 3, 4]);
        let b = VertexSet::from_slice(10, &[3, 4, 5, 6]);
        assert_eq!(a.union(&b).to_vec(), vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(a.intersection(&b).to_vec(), vec![3, 4]);
        assert_eq!(a.difference(&b).to_vec(), vec![1, 2]);
        assert_eq!(b.difference(&a).to_vec(), vec![5, 6]);
        assert_eq!(a.intersection_len(&b), 2);
        assert!(a.intersects(&b));
        assert!(!a.is_disjoint(&b));
        let c = VertexSet::from_slice(10, &[7, 8]);
        assert!(a.is_disjoint(&c));
    }

    #[test]
    fn subset_relations() {
        let a = VertexSet::from_slice(10, &[1, 2]);
        let b = VertexSet::from_slice(10, &[1, 2, 3]);
        assert!(a.is_subset_of(&b));
        assert!(a.is_proper_subset_of(&b));
        assert!(b.is_superset_of(&a));
        assert!(!b.is_subset_of(&a));
        assert!(a.is_subset_of(&a));
        assert!(!a.is_proper_subset_of(&a));
    }

    #[test]
    fn complement_respects_universe_boundary() {
        // Universe 65 exercises the partially-filled last word.
        let s = VertexSet::from_slice(65, &[0, 64]);
        let c = s.complement();
        assert_eq!(c.len(), 63);
        assert!(!c.contains(0));
        assert!(!c.contains(64));
        assert!(c.contains(1));
        assert!(c.contains(63));
    }

    #[test]
    fn iteration_order_and_minmax() {
        let s = VertexSet::from_slice(200, &[150, 3, 64, 65, 199]);
        assert_eq!(s.to_vec(), vec![3, 64, 65, 150, 199]);
        assert_eq!(s.min_vertex(), Some(3));
        assert_eq!(s.max_vertex(), Some(199));
        assert_eq!(VertexSet::empty(5).min_vertex(), None);
        assert_eq!(VertexSet::empty(5).max_vertex(), None);
    }

    #[test]
    fn singleton_and_resize() {
        let s = VertexSet::singleton(8, 3);
        assert_eq!(s.to_vec(), vec![3]);
        let bigger = s.resized(100);
        assert_eq!(bigger.universe(), 100);
        assert_eq!(bigger.to_vec(), vec![3]);
    }

    #[test]
    fn ordering_is_total_and_consistent_with_eq() {
        let a = VertexSet::from_slice(10, &[1]);
        let b = VertexSet::from_slice(10, &[2]);
        let c = VertexSet::from_slice(10, &[1]);
        assert_eq!(a.cmp(&c), std::cmp::Ordering::Equal);
        assert_ne!(a.cmp(&b), std::cmp::Ordering::Equal);
        let mut v = [b.clone(), a.clone()];
        v.sort();
        assert_eq!(v[0], a);
    }

    #[test]
    fn clear_resets() {
        let mut s = VertexSet::from_slice(10, &[1, 5, 9]);
        s.clear();
        assert!(s.is_empty());
    }
}
