//! Parsing and writing graphs in the formats used by the paper's datasets.
//!
//! Three textual formats are supported:
//!
//! * **PACE** `.gr` (the PACE 2016 treewidth competition format): a
//!   `p tw <n> <m>` header followed by one `u v` line per edge, 1-based.
//! * **DIMACS** `.col` (graph-coloring instances): a `p edge <n> <m>` header
//!   and `e u v` edge lines, 1-based.
//! * **Edge list**: `u v` per line, 0-based, vertices inferred from the
//!   maximum index (an optional first line `n <count>` fixes the count).
//!
//! Comments (`c …`, `#…`, `%…`) and blank lines are ignored everywhere.

use crate::graph::Graph;
use crate::vertexset::Vertex;
use std::fmt::Write as _;

/// Errors produced while parsing a graph file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The header line (`p …`) is missing or malformed.
    BadHeader(String),
    /// An edge line could not be parsed.
    BadEdge {
        /// 1-based line number of the offending line.
        line_number: usize,
        /// The offending line text.
        line: String,
    },
    /// An edge endpoint is outside the declared vertex range.
    VertexOutOfRange {
        /// 1-based line number of the offending line.
        line_number: usize,
        /// The out-of-range vertex as written in the file.
        vertex: usize,
        /// The declared number of vertices.
        n: usize,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadHeader(line) => write!(f, "malformed or missing header: {line:?}"),
            ParseError::BadEdge { line_number, line } => {
                write!(f, "malformed edge on line {line_number}: {line:?}")
            }
            ParseError::VertexOutOfRange {
                line_number,
                vertex,
                n,
            } => write!(
                f,
                "vertex {vertex} on line {line_number} is outside the declared range 1..={n}"
            ),
        }
    }
}

impl std::error::Error for ParseError {}

fn is_comment(line: &str) -> bool {
    let t = line.trim_start();
    t.is_empty()
        || t.starts_with('c') && t[1..].starts_with([' ', '\t'])
        || t == "c"
        || t.starts_with('#')
        || t.starts_with('%')
}

/// Parses a PACE 2016 `.gr` file (`p tw n m`, 1-based `u v` edge lines).
pub fn parse_pace(input: &str) -> Result<Graph, ParseError> {
    let mut n: Option<usize> = None;
    let mut g: Option<Graph> = None;
    for (idx, raw) in input.lines().enumerate() {
        let line_number = idx + 1;
        if is_comment(raw) {
            continue;
        }
        let line = raw.trim();
        if line.starts_with("p ") || line.starts_with("p\t") {
            let parts: Vec<&str> = line.split_whitespace().collect();
            if parts.len() < 4 || parts[1] != "tw" {
                return Err(ParseError::BadHeader(line.to_string()));
            }
            let declared = parts[2]
                .parse::<usize>()
                .map_err(|_| ParseError::BadHeader(line.to_string()))?;
            n = Some(declared);
            g = Some(Graph::new(declared as u32));
            continue;
        }
        let graph = g
            .as_mut()
            .ok_or_else(|| ParseError::BadHeader(String::from("edge before header")))?;
        let n = n.expect("n set together with g");
        let mut parts = line.split_whitespace();
        let (u, v) = match (parts.next(), parts.next()) {
            (Some(a), Some(b)) => (
                a.parse::<usize>().map_err(|_| ParseError::BadEdge {
                    line_number,
                    line: line.to_string(),
                })?,
                b.parse::<usize>().map_err(|_| ParseError::BadEdge {
                    line_number,
                    line: line.to_string(),
                })?,
            ),
            _ => {
                return Err(ParseError::BadEdge {
                    line_number,
                    line: line.to_string(),
                })
            }
        };
        for &x in &[u, v] {
            if x == 0 || x > n {
                return Err(ParseError::VertexOutOfRange {
                    line_number,
                    vertex: x,
                    n,
                });
            }
        }
        if u != v {
            graph.add_edge((u - 1) as Vertex, (v - 1) as Vertex);
        }
    }
    g.ok_or_else(|| ParseError::BadHeader(String::from("no header found")))
}

/// Writes a graph in PACE 2016 `.gr` format.
pub fn write_pace(g: &Graph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "p tw {} {}", g.n(), g.m());
    for (u, v) in g.edges() {
        let _ = writeln!(out, "{} {}", u + 1, v + 1);
    }
    out
}

/// Parses a DIMACS `.col` file (`p edge n m`, `e u v` edge lines, 1-based).
pub fn parse_dimacs(input: &str) -> Result<Graph, ParseError> {
    let mut n: Option<usize> = None;
    let mut g: Option<Graph> = None;
    for (idx, raw) in input.lines().enumerate() {
        let line_number = idx + 1;
        if is_comment(raw) {
            continue;
        }
        let line = raw.trim();
        if line.starts_with("p ") || line.starts_with("p\t") {
            let parts: Vec<&str> = line.split_whitespace().collect();
            if parts.len() < 4 || (parts[1] != "edge" && parts[1] != "edges" && parts[1] != "col") {
                return Err(ParseError::BadHeader(line.to_string()));
            }
            let declared = parts[2]
                .parse::<usize>()
                .map_err(|_| ParseError::BadHeader(line.to_string()))?;
            n = Some(declared);
            g = Some(Graph::new(declared as u32));
            continue;
        }
        if let Some(rest) = line.strip_prefix('e') {
            let graph = g
                .as_mut()
                .ok_or_else(|| ParseError::BadHeader(String::from("edge before header")))?;
            let n = n.expect("n set together with g");
            let mut parts = rest.split_whitespace();
            let (u, v) = match (parts.next(), parts.next()) {
                (Some(a), Some(b)) => (
                    a.parse::<usize>().map_err(|_| ParseError::BadEdge {
                        line_number,
                        line: line.to_string(),
                    })?,
                    b.parse::<usize>().map_err(|_| ParseError::BadEdge {
                        line_number,
                        line: line.to_string(),
                    })?,
                ),
                _ => {
                    return Err(ParseError::BadEdge {
                        line_number,
                        line: line.to_string(),
                    })
                }
            };
            for &x in &[u, v] {
                if x == 0 || x > n {
                    return Err(ParseError::VertexOutOfRange {
                        line_number,
                        vertex: x,
                        n,
                    });
                }
            }
            if u != v {
                graph.add_edge((u - 1) as Vertex, (v - 1) as Vertex);
            }
        }
    }
    g.ok_or_else(|| ParseError::BadHeader(String::from("no header found")))
}

/// Writes a graph in DIMACS `.col` format (`p edge n m`, 1-based `e u v`
/// edge lines) — the counterpart of [`parse_dimacs`].
pub fn write_dimacs(g: &Graph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "p edge {} {}", g.n(), g.m());
    for (u, v) in g.edges() {
        let _ = writeln!(out, "e {} {}", u + 1, v + 1);
    }
    out
}

/// Parses a plain 0-based edge list. An optional leading `n <count>` line
/// declares the vertex count; otherwise it is inferred as `max index + 1`.
pub fn parse_edge_list(input: &str) -> Result<Graph, ParseError> {
    let mut declared_n: Option<usize> = None;
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut max_v = 0usize;
    for (idx, raw) in input.lines().enumerate() {
        let line_number = idx + 1;
        if is_comment(raw) {
            continue;
        }
        let line = raw.trim();
        if let Some(rest) = line.strip_prefix("n ") {
            declared_n = Some(
                rest.trim()
                    .parse::<usize>()
                    .map_err(|_| ParseError::BadHeader(line.to_string()))?,
            );
            continue;
        }
        let mut parts = line.split_whitespace();
        let (u, v) = match (parts.next(), parts.next()) {
            (Some(a), Some(b)) => (
                a.parse::<usize>().map_err(|_| ParseError::BadEdge {
                    line_number,
                    line: line.to_string(),
                })?,
                b.parse::<usize>().map_err(|_| ParseError::BadEdge {
                    line_number,
                    line: line.to_string(),
                })?,
            ),
            _ => {
                return Err(ParseError::BadEdge {
                    line_number,
                    line: line.to_string(),
                })
            }
        };
        max_v = max_v.max(u).max(v);
        edges.push((u, v));
    }
    let n = declared_n.unwrap_or(if edges.is_empty() { 0 } else { max_v + 1 });
    for (idx, &(u, v)) in edges.iter().enumerate() {
        if u >= n || v >= n {
            return Err(ParseError::VertexOutOfRange {
                line_number: idx + 1,
                vertex: u.max(v),
                n,
            });
        }
    }
    let mut g = Graph::new(n as u32);
    for (u, v) in edges {
        if u != v {
            g.add_edge(u as Vertex, v as Vertex);
        }
    }
    Ok(g)
}

/// Writes a graph as a 0-based edge list with an `n <count>` header.
pub fn write_edge_list(g: &Graph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "n {}", g.n());
    for (u, v) in g.edges() {
        let _ = writeln!(out, "{u} {v}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pace_roundtrip() {
        let input = "c a comment\np tw 4 3\n1 2\n2 3\n3 4\n";
        let g = parse_pace(input).unwrap();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 3);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 2) && g.has_edge(2, 3));
        let written = write_pace(&g);
        let g2 = parse_pace(&written).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn pace_errors() {
        assert!(matches!(parse_pace("1 2\n"), Err(ParseError::BadHeader(_))));
        assert!(matches!(
            parse_pace("p tw 2 1\n1 5\n"),
            Err(ParseError::VertexOutOfRange { .. })
        ));
        assert!(matches!(
            parse_pace("p tw 2 1\nfoo bar\n"),
            Err(ParseError::BadEdge { .. })
        ));
        assert!(matches!(parse_pace(""), Err(ParseError::BadHeader(_))));
    }

    #[test]
    fn dimacs_parse() {
        let input = "c coloring instance\np edge 3 3\ne 1 2\ne 2 3\ne 1 3\n";
        let g = parse_dimacs(input).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
    }

    #[test]
    fn dimacs_roundtrip() {
        let input = "p edge 4 3\ne 1 2\ne 2 3\ne 3 4\n";
        let g = parse_dimacs(input).unwrap();
        let written = write_dimacs(&g);
        let g2 = parse_dimacs(&written).unwrap();
        assert_eq!(g, g2);
        assert!(written.starts_with("p edge 4 3"));
        assert!(written.contains("e 1 2"));
    }

    #[test]
    fn dimacs_self_loops_and_duplicates_ignored() {
        let input = "p edge 3 4\ne 1 1\ne 1 2\ne 2 1\ne 2 3\n";
        let g = parse_dimacs(input).unwrap();
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn edge_list_roundtrip() {
        let input = "# comment\n0 1\n1 2\n";
        let g = parse_edge_list(input).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
        let written = write_edge_list(&g);
        let g2 = parse_edge_list(&written).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn edge_list_with_declared_n() {
        let input = "n 10\n0 1\n";
        let g = parse_edge_list(input).unwrap();
        assert_eq!(g.n(), 10);
        assert_eq!(g.m(), 1);
        // Declared n too small is an error.
        assert!(parse_edge_list("n 2\n0 5\n").is_err());
    }

    #[test]
    fn empty_edge_list() {
        let g = parse_edge_list("").unwrap();
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
    }
}
