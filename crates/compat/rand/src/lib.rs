//! Offline stand-in for the crates.io [`rand`](https://crates.io/crates/rand)
//! crate (0.8 API surface).
//!
//! The build environment for this workspace is hermetic — no registry access
//! — so the small slice of `rand` the workload generators use is implemented
//! here under the same paths: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_bool`] and [`Rng::gen_range`]. The generator is `xoshiro256**`
//! seeded through SplitMix64, which matches the statistical quality the
//! workloads need (reproducible, well-mixed streams); it does **not** promise
//! bit-compatibility with the real `rand` crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// A random number generator seedable from integers or byte arrays.
pub trait SeedableRng: Sized {
    /// Creates the generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be uniformly sampled from a range by an [`Rng`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = (rng.next_u64() as u128) % span;
                (self.start as u128 + draw) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                let draw = (rng.next_u64() as u128) % span;
                (start as u128 + draw) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// The user-facing random-value interface.
pub trait Rng {
    /// Returns the next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        // 53 uniform mantissa bits, the standard float-in-[0,1) construction.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

/// Namespaced concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard seedable generator: `xoshiro256**` with SplitMix64
    /// seed expansion.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y: usize = rng.gen_range(0usize..5);
            assert!(y < 5);
        }
    }

    #[test]
    fn gen_bool_extremes_and_balance() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }
}
