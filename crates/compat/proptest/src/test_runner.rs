//! Runner configuration, case RNG, and the error type threaded through the
//! `prop_assert*` macros.

/// How many cases [`crate::proptest!`] runs per property.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// How many `prop_assume!` rejections one case may resample through before
/// the property is declared vacuous.
pub const MAX_REJECTS_PER_CASE: u64 = 64;

/// Why a single case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!`.
    Reject,
    /// A `prop_assert*!` failed with this message.
    Fail(String),
}

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The deterministic per-case generator (the workspace `rand` stand-in's
/// [`StdRng`], seeded per case).
///
/// Each case index maps to an independent, fixed stream, so a failing case
/// number identifies its inputs exactly across runs and machines.
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// The RNG for case number `case`.
    pub fn deterministic(case: u64) -> Self {
        // Golden-ratio offset keeps neighbouring case streams uncorrelated.
        TestRng {
            inner: StdRng::seed_from_u64(
                case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
            ),
        }
    }
}

impl rand::Rng for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
