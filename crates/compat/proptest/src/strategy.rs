//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type from a [`TestRng`].
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// produces the final value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f` to obtain a dependent strategy, then
    /// samples that strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`crate::prop::collection::vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        (0..self.size).map(|_| self.element.generate(rng)).collect()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
