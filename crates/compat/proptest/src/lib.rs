//! Offline stand-in for the crates.io
//! [`proptest`](https://crates.io/crates/proptest) crate.
//!
//! The build environment is hermetic (no registry access), so this crate
//! reimplements the slice of proptest the test suites use: the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map`, range and tuple
//! strategies, [`strategy::Just`], `prop::collection::vec`, the
//! [`proptest!`] macro with `#![proptest_config(..)]`, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from real proptest, by design:
//!
//! * cases are generated from a fixed deterministic seed sequence, so every
//!   run of the suite tests the same inputs (reproducible CI);
//! * there is no shrinking — on failure the case index is reported and the
//!   failing values are printed when they implement `Debug` via the assert
//!   message the test supplies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Namespaced strategy constructors, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies (`prop::collection::vec`).
    pub mod collection {
        use crate::strategy::{Strategy, VecStrategy};

        /// A strategy producing a `Vec` of exactly `size` elements drawn
        /// from `element`. (Real proptest also accepts size *ranges*; the
        /// workspace only uses exact sizes.)
        pub fn vec<S: Strategy>(element: S, size: usize) -> VecStrategy<S> {
            VecStrategy { element, size }
        }
    }
}

/// The glob-importable surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `fn name(x in strategy, ..) { body }` item
/// becomes a `#[test]` that runs `body` for `config.cases` deterministic
/// cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                for case in 0..config.cases {
                    // A prop_assume! rejection resamples (fresh derived seed)
                    // rather than silently consuming the case, mirroring real
                    // proptest; a case whose every sample rejects is vacuous
                    // and fails loudly.
                    let mut accepted = false;
                    for attempt in 0..$crate::test_runner::MAX_REJECTS_PER_CASE {
                        let mut rng = $crate::test_runner::TestRng::deterministic(
                            (case as u64).wrapping_add(attempt.wrapping_mul(0x1_0000_0000)),
                        );
                        $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                        let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                            (|| { $body ::std::result::Result::Ok(()) })();
                        match outcome {
                            ::std::result::Result::Ok(()) => {
                                accepted = true;
                                break;
                            }
                            ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                            ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                                panic!("property failed at case {case}/{}: {msg}", config.cases);
                            }
                        }
                    }
                    assert!(
                        accepted,
                        "prop_assume! rejected {} consecutive samples at case {case}; \
                         the property is vacuous — loosen the assumption or the strategy",
                        $crate::test_runner::MAX_REJECTS_PER_CASE,
                    );
                }
            }
        )*
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)*)
        );
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discards the current case (counts as neither pass nor fail).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..10, y in 0usize..4, z in 1u8..=5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 4);
            prop_assert!((1..=5).contains(&z));
        }

        #[test]
        fn combinators_compose(v in (2u32..6).prop_flat_map(|n| {
            (Just(n), prop::collection::vec(0u8..2, n as usize))
        }).prop_map(|(n, bits)| (n, bits))) {
            let (n, bits) = v;
            prop_assert_eq!(bits.len(), n as usize);
            prop_assert!(bits.iter().all(|&b| b < 2));
        }

        #[test]
        fn assume_discards(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = 0u32..1000;
        let a: Vec<u32> = (0..16)
            .map(|c| strat.clone().generate(&mut TestRng::deterministic(c)))
            .collect();
        let b: Vec<u32> = (0..16)
            .map(|c| strat.clone().generate(&mut TestRng::deterministic(c)))
            .collect();
        assert_eq!(a, b);
        assert!(a.windows(2).any(|w| w[0] != w[1]), "cases should vary");
    }
}
