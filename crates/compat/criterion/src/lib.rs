//! Offline stand-in for the crates.io
//! [`criterion`](https://crates.io/crates/criterion) benchmark harness.
//!
//! The build environment is hermetic (no registry access), so this crate
//! implements the API surface the `mtr-bench` benches use — [`Criterion`],
//! benchmark groups, [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — with a simple but
//! real measurement loop: per benchmark it runs `sample_size` samples (or
//! until the group's `measurement_time` budget is spent, whichever comes
//! first) and reports min / mean / max wall-clock time per iteration.
//!
//! Two environment variables extend the default text report:
//!
//! * `MTR_BENCH_JSON=<path>` — additionally writes all results as a JSON
//!   array (used to snapshot `BENCH_baseline.json`);
//! * `MTR_BENCH_FAST=1` — caps every group at 3 samples for smoke runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One finished measurement.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// `group/function/parameter` identifier.
    pub id: String,
    /// Samples collected.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
    /// Fastest sample, nanoseconds per iteration.
    pub min_ns: f64,
    /// Mean over samples, nanoseconds per iteration.
    pub mean_ns: f64,
    /// Slowest sample, nanoseconds per iteration.
    pub max_ns: f64,
    /// Median sample, nanoseconds per iteration.
    pub p50_ns: f64,
    /// 99th-percentile sample (the max for fewer than 100 samples),
    /// nanoseconds per iteration. Meaningful for latency-style benches
    /// where every sample is one independent measurement
    /// ([`Bencher::iter_custom`]).
    pub p99_ns: f64,
}

/// The `q`-quantile of `sorted` (ascending), by the nearest-rank method.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
        }
    }

    /// Prints the final report and honours `MTR_BENCH_JSON`.
    pub fn final_summary(&self) {
        println!();
        println!(
            "{:<55} {:>12} {:>12} {:>12} {:>12}",
            "benchmark", "min", "p50", "p99", "max"
        );
        for r in &self.results {
            println!(
                "{:<55} {:>12} {:>12} {:>12} {:>12}",
                r.id,
                format_ns(r.min_ns),
                format_ns(r.p50_ns),
                format_ns(r.p99_ns),
                format_ns(r.max_ns)
            );
        }
        if let Ok(path) = std::env::var("MTR_BENCH_JSON") {
            let json = results_to_json(&self.results);
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: cannot write {path}: {e}");
            } else {
                println!("\nwrote {} results to {path}", self.results.len());
            }
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            '\t' => "\\t".chars().collect(),
            '\r' => "\\r".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn results_to_json(results: &[BenchResult]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "  {{\"id\": \"{}\", \"samples\": {}, \"iters_per_sample\": {}, \
             \"min_ns\": {:.1}, \"mean_ns\": {:.1}, \"max_ns\": {:.1}, \
             \"p50_ns\": {:.1}, \"p99_ns\": {:.1}}}{}",
            json_escape(&r.id),
            r.samples,
            r.iters_per_sample,
            r.min_ns,
            r.mean_ns,
            r.max_ns,
            r.p50_ns,
            r.p99_ns,
            comma
        );
    }
    out.push_str("]\n");
    out
}

/// A named identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// `function/parameter` form.
    pub fn new<P: std::fmt::Display>(function: &str, parameter: P) -> Self {
        BenchmarkId {
            function: Some(function.to_string()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Parameter-only form (the group name carries the function).
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self, group: &str) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{group}/{f}/{p}"),
            (Some(f), None) => format!("{group}/{f}"),
            (None, Some(p)) => format!("{group}/{p}"),
            (None, None) => group.to_string(),
        }
    }
}

/// A group of benchmarks sharing sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the per-benchmark wall-clock budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Measures `routine(bencher, input)`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            sample_size: effective_sample_size(self.sample_size),
            measurement_time: self.measurement_time,
            samples_ns: Vec::new(),
            iters_per_sample: 1,
        };
        routine(&mut bencher, input);
        self.record(id, bencher);
        self
    }

    fn record(&mut self, id: BenchmarkId, bencher: Bencher) {
        let id = id.render(&self.name);
        let samples = &bencher.samples_ns;
        if samples.is_empty() {
            return;
        }
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(0.0f64, f64::max);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
        eprintln!(
            "measured {id}: {} ({} samples)",
            format_ns(mean),
            samples.len()
        );
        self.criterion.results.push(BenchResult {
            id,
            samples: samples.len(),
            iters_per_sample: bencher.iters_per_sample,
            min_ns: min,
            mean_ns: mean,
            max_ns: max,
            p50_ns: quantile(&sorted, 0.5),
            p99_ns: quantile(&sorted, 0.99),
        });
    }

    /// Ends the group (kept for API compatibility; recording is eager).
    pub fn finish(self) {}
}

fn effective_sample_size(configured: usize) -> usize {
    if std::env::var("MTR_BENCH_FAST").is_ok_and(|v| v == "1") {
        configured.min(3)
    } else {
        configured
    }
}

/// Passed to the benchmark closure; runs and times the measured routine.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    samples_ns: Vec<f64>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, collecting up to the configured number of samples
    /// within the group's time budget. Each sample runs enough iterations
    /// to make the per-sample time measurable.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: aim for samples of at least ~1ms or one iteration.
        let warmup = Instant::now();
        black_box(routine());
        let once = warmup.elapsed();
        let iters = if once < Duration::from_micros(50) {
            (Duration::from_millis(1).as_nanos() / once.as_nanos().max(1)).clamp(1, 10_000) as u64
        } else {
            1
        };
        self.iters_per_sample = iters;
        let budget_start = Instant::now();
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let per_iter = t.elapsed().as_nanos() as f64 / iters as f64;
            self.samples_ns.push(per_iter);
            if budget_start.elapsed() > self.measurement_time {
                break;
            }
        }
    }

    /// Times `routine` with caller-side measurement, mirroring criterion's
    /// `iter_custom`: the closure receives an iteration count and returns
    /// the measured [`Duration`] for that many iterations. Every sample
    /// runs exactly one iteration here, so the recorded distribution (and
    /// its p50/p99) is over *individual* measurements — the right shape
    /// for latency benchmarks.
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        self.iters_per_sample = 1;
        let budget_start = Instant::now();
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let elapsed = routine(1);
            self.samples_ns.push(elapsed.as_nanos() as f64);
            if budget_start.elapsed() > self.measurement_time {
                break;
            }
        }
    }
}

/// Bundles benchmark functions into one group runner, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Runs this file's benchmark functions against one [`Criterion`].
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` for a bench target (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes `--bench` (and possibly filters); this
            // minimal harness runs everything and ignores the arguments.
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fib(n: u64) -> u64 {
        (1..=n).fold((0u64, 1u64), |(a, b), _| (b, a + b)).0
    }

    #[test]
    fn measures_and_records() {
        let mut c = Criterion::default();
        {
            let mut group = c.benchmark_group("g");
            group
                .sample_size(5)
                .measurement_time(Duration::from_millis(50));
            group.bench_with_input(BenchmarkId::new("fib", 20), &20u64, |b, &n| {
                b.iter(|| fib(n))
            });
            group.bench_with_input(BenchmarkId::from_parameter("p"), &5u64, |b, &n| {
                b.iter(|| fib(n))
            });
            group.finish();
        }
        assert_eq!(c.results.len(), 2);
        assert_eq!(c.results[0].id, "g/fib/20");
        assert_eq!(c.results[1].id, "g/p");
        assert!(c.results.iter().all(|r| r.mean_ns > 0.0));
        assert!(c
            .results
            .iter()
            .all(|r| r.min_ns <= r.mean_ns && r.mean_ns <= r.max_ns));
        assert!(c
            .results
            .iter()
            .all(|r| r.min_ns <= r.p50_ns && r.p50_ns <= r.p99_ns && r.p99_ns <= r.max_ns));
    }

    #[test]
    fn iter_custom_records_caller_measurements() {
        let mut c = Criterion::default();
        {
            let mut group = c.benchmark_group("g");
            group
                .sample_size(4)
                .measurement_time(Duration::from_millis(200));
            let mut tick = 0u64;
            group.bench_with_input(BenchmarkId::new("lat", 0), &(), |b, ()| {
                b.iter_custom(|iters| {
                    assert_eq!(iters, 1);
                    tick += 1;
                    Duration::from_micros(tick)
                })
            });
            group.finish();
        }
        let r = &c.results[0];
        assert_eq!(r.samples, 4);
        assert_eq!(r.iters_per_sample, 1);
        // Samples were 1, 2, 3, 4 µs.
        assert_eq!(r.min_ns, 1_000.0);
        assert_eq!(r.max_ns, 4_000.0);
        assert_eq!(r.p50_ns, 2_000.0);
        assert_eq!(r.p99_ns, 4_000.0);
    }

    #[test]
    fn quantiles_use_nearest_rank() {
        let sorted: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(quantile(&sorted, 0.5), 50.0);
        assert_eq!(quantile(&sorted, 0.99), 99.0);
        assert_eq!(quantile(&[7.0], 0.5), 7.0);
        assert_eq!(quantile(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn json_shape_is_parseable_enough() {
        let json = results_to_json(&[BenchResult {
            id: "a/b".into(),
            samples: 3,
            iters_per_sample: 10,
            min_ns: 1.0,
            mean_ns: 2.0,
            max_ns: 3.0,
            p50_ns: 2.0,
            p99_ns: 3.0,
        }]);
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"id\": \"a/b\""));
        assert!(json.contains("\"p99_ns\": 3.0"));
    }

    #[test]
    fn json_ids_are_escaped() {
        assert_eq!(json_escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(json_escape("a\nb\u{1}"), "a\\nb\\u0001");
    }
}
