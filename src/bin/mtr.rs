//! `mtr` — command-line ranked enumeration of minimal triangulations and
//! proper tree decompositions.
//!
//! ```text
//! mtr <graph-file|-> [--format pace|dimacs|edges] [--cost width|fill|width-fill|expbags]
//!                    [--top <k>] [--width-bound <b>] [--threads <t>]
//!                    [--diverse <threshold>] [--deadline <secs>] [--node-budget <n>]
//!                    [--reduce off|components|full] [--stats-json]
//!                    [--emit-td <directory>] [--bounds] [--trace-json <path>]
//! mtr atoms <graph-file|-> [--format pace|dimacs|edges] [--reduce components|full]
//! mtr serve [--addr <host:port>] [--unix <path>] [--workers <n>] [--cache-dir <dir>]
//!           [--byte-budget <bytes>] [--max-sessions <n>] [--max-results-cap <k>]
//!           [--deadline-cap <secs>] [--node-budget-cap <n>] [--max-vertices <n>]
//!           [--max-edges <m>] [--no-remote-shutdown] [--slow-ms <ms>]
//!           [--trace-json <path>]
//! mtr client <graph-file|-> [--addr <host:port>] [--unix <path>] [--cost <name>]
//!           [--top <k>] [--width-bound <b>] [--deadline <secs>] [--node-budget <n>]
//!           [--threads <t>] [--tenant <name>] [--cache] [--binary] [--stats-json]
//!           [--metrics] [--shutdown]
//! ```
//!
//! The graph is read from a file, or from standard input when the path is
//! `-`. The format is guessed from the extension (`.gr` → PACE, `.col` →
//! DIMACS, anything else → edge list) unless `--format` is given. The tool
//! builds an [`Enumerate`] session from the flags, prints the cost, width
//! and fill-in of each returned triangulation plus the session statistics
//! (machine-readable with `--stats-json`), and optionally writes each
//! clique tree as a PACE `.td` file.
//!
//! `--reduce` enables the safe-reduction / atom-decomposition preprocessing
//! of `mtr-reduce`; the `atoms` subcommand prints the decomposition itself
//! without enumerating.
//!
//! `serve` starts the `mtr-serve` daemon (see `docs/PROTOCOL.md`):
//! streaming ranked enumeration over TCP or a Unix socket with a shared
//! atom cache and cache-aware admission. `client` submits one request to a
//! running daemon and prints the streamed results; `--shutdown` asks the
//! daemon to drain and exit afterwards (with `-` as the graph path it
//! sends no request at all — a pure shutdown).
//!
//! Bad inputs exit with a non-zero status and a typed, line-numbered
//! message (see [`EnumerationError`]) instead of panicking.

use ranked_triangulations::cache::{self, AtomStore, StoreStats, DEFAULT_BYTE_BUDGET};
use ranked_triangulations::chordal::{self, clique_tree, write_td};
use ranked_triangulations::core::{
    Enumerate, EnumerationError, EnumerationRun, EnumerationStats, PruningPolicy,
    RankedTriangulation, SimilarityMeasure, StopReason, SymmetryPolicy,
};
use ranked_triangulations::fault;
use ranked_triangulations::graph::{io, Graph};
use ranked_triangulations::obs;
use ranked_triangulations::reduce::{decompose, EnumerateReduceExt, ReductionLevel};
use ranked_triangulations::serve;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

/// What the invocation asks for: ranked enumeration (the default) or an
/// inspection of the atom decomposition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    Enumerate,
    Atoms,
}

struct Options {
    mode: Mode,
    input: PathBuf,
    format: Option<String>,
    cost: String,
    top: usize,
    width_bound: Option<usize>,
    threads: usize,
    diverse: Option<f64>,
    deadline: Option<f64>,
    node_budget: Option<usize>,
    reduce: ReductionLevel,
    cache: bool,
    cache_dir: Option<PathBuf>,
    no_prune: bool,
    symmetry: SymmetryPolicy,
    stats_json: bool,
    emit_td: Option<PathBuf>,
    bounds: bool,
    trace_json: Option<PathBuf>,
    fault: Option<String>,
}

/// Everything the CLI can fail with: flag misuse, or a typed enumeration
/// error (file I/O, parse failures with line numbers, unknown costs, …).
enum CliError {
    Usage(String),
    Enumeration(EnumerationError),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(message) => f.write_str(message),
            CliError::Enumeration(e) => write!(f, "{e}"),
        }
    }
}

impl From<EnumerationError> for CliError {
    fn from(e: EnumerationError) -> Self {
        CliError::Enumeration(e)
    }
}

fn usage() -> &'static str {
    "usage: mtr <graph-file|-> [--format pace|dimacs|edges] [--cost width|fill|width-fill|expbags]\n\
     \x20          [--top <k>] [--width-bound <b>] [--threads <t>] [--diverse <threshold>]\n\
     \x20          [--deadline <secs>] [--node-budget <n>] [--reduce off|components|full]\n\
     \x20          [--cache] [--cache-dir <directory>] [--no-prune]\n\
     \x20          [--modulo-symmetry] [--no-symmetry]\n\
     \x20          [--stats-json] [--emit-td <directory>] [--bounds] [--trace-json <path>]\n\
     \x20          [--fault <spec>]\n\
     \x20      mtr atoms <graph-file|-> [--format pace|dimacs|edges] [--reduce components|full]\n\
     \x20      mtr serve [--addr <host:port>] [--unix <path>] [--workers <n>] [--cache-dir <dir>]\n\
     \x20                [--byte-budget <bytes>] [--max-sessions <n>] [--max-results-cap <k>]\n\
     \x20                [--deadline-cap <secs>] [--node-budget-cap <n>] [--max-vertices <n>]\n\
     \x20                [--max-edges <m>] [--no-remote-shutdown] [--slow-ms <ms>]\n\
     \x20                [--max-session-ms <ms>] [--trace-json <path>] [--fault <spec>]\n\
     \x20      mtr client <graph-file|-> [--addr <host:port>] [--unix <path>] [--cost <name>]\n\
     \x20                [--top <k>] [--width-bound <b>] [--deadline <secs>] [--node-budget <n>]\n\
     \x20                [--threads <t>] [--tenant <name>] [--cache] [--binary] [--stats-json]\n\
     \x20                [--metrics] [--shutdown] [--retries <n>] [--backoff-ms <ms>]\n\
     \x20      --threads 0 auto-detects the hardware parallelism; with --reduce the\n\
     \x20      workers advance the per-atom streams, otherwise the partition expansions\n\
     \x20      --cache enables the canonical-form atom cache (requires --reduce);\n\
     \x20      --cache-dir additionally persists atom prefixes across runs\n\
     \x20      --no-prune disables incumbent-bounded branch pruning (on by default;\n\
     \x20      pruning never changes the results, only the work performed)\n\
     \x20      --modulo-symmetry emits one representative per automorphism orbit of\n\
     \x20      minimal triangulations (for label-invariant costs); --no-symmetry also\n\
     \x20      disables the exact orbit-sharing of subproblems that is on by default\n\
     \x20      --trace-json records every span and event as JSONL (see docs/OBSERVABILITY.md);\n\
     \x20      --slow-ms logs requests whose first result took longer than the threshold;\n\
     \x20      --max-session-ms cancels any served session running past the cap;\n\
     \x20      --fault arms seeded failpoints, e.g. cache.disk.write=error%50,seed=7\n\
     \x20      (see docs/ROBUSTNESS.md for the catalog — testing only);\n\
     \x20      client --retries reissues a failed request (exponential --backoff-ms,\n\
     \x20      only when zero results were received) — safe against transient faults;\n\
     \x20      client --metrics prints the daemon's live introspection snapshot"
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut it = args.iter();
    let first = it.next().ok_or_else(|| usage().to_string())?;
    let (mode, input) = if first == "atoms" {
        let input = it.next().ok_or_else(|| usage().to_string())?;
        (Mode::Atoms, PathBuf::from(input))
    } else {
        (Mode::Enumerate, PathBuf::from(first))
    };
    let mut opts = Options {
        mode,
        input,
        format: None,
        cost: "width".into(),
        top: 5,
        width_bound: None,
        threads: 1,
        diverse: None,
        deadline: None,
        node_budget: None,
        reduce: match mode {
            // Inspecting atoms at level `off` would always print one atom;
            // default to the full decomposition there.
            Mode::Atoms => ReductionLevel::Full,
            Mode::Enumerate => ReductionLevel::Off,
        },
        cache: false,
        cache_dir: None,
        no_prune: false,
        symmetry: SymmetryPolicy::default(),
        stats_json: false,
        emit_td: None,
        bounds: false,
        trace_json: None,
        fault: None,
    };
    while let Some(flag) = it.next() {
        if mode == Mode::Atoms && !matches!(flag.as_str(), "--format" | "--reduce") {
            return Err(format!(
                "flag {flag} does not apply to the atoms subcommand\n{}",
                usage()
            ));
        }
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--format" => opts.format = Some(value("--format")?),
            "--cost" => opts.cost = value("--cost")?,
            "--top" => {
                opts.top = value("--top")?
                    .parse()
                    .map_err(|_| "--top expects a positive integer".to_string())?
            }
            "--width-bound" => {
                opts.width_bound = Some(
                    value("--width-bound")?
                        .parse()
                        .map_err(|_| "--width-bound expects an integer".to_string())?,
                )
            }
            "--threads" => {
                opts.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "--threads expects an integer (0 = auto-detect)".to_string())?
            }
            "--diverse" => {
                opts.diverse = Some(
                    value("--diverse")?
                        .parse()
                        .map_err(|_| "--diverse expects a number in [0,1]".to_string())?,
                )
            }
            "--deadline" => {
                let secs: f64 = value("--deadline")?
                    .parse()
                    .map_err(|_| "--deadline expects a number of seconds".to_string())?;
                if !secs.is_finite() || secs < 0.0 {
                    return Err(
                        "--deadline expects a finite, non-negative number of seconds".to_string(),
                    );
                }
                opts.deadline = Some(secs);
            }
            "--node-budget" => {
                opts.node_budget = Some(
                    value("--node-budget")?
                        .parse()
                        .map_err(|_| "--node-budget expects a positive integer".to_string())?,
                )
            }
            "--reduce" => opts.reduce = value("--reduce")?.parse()?,
            "--cache" => opts.cache = true,
            "--cache-dir" => {
                opts.cache = true;
                opts.cache_dir = Some(PathBuf::from(value("--cache-dir")?));
            }
            "--no-prune" => opts.no_prune = true,
            "--modulo-symmetry" => opts.symmetry = SymmetryPolicy::ModuloSymmetry,
            "--no-symmetry" => opts.symmetry = SymmetryPolicy::Off,
            "--stats-json" => opts.stats_json = true,
            "--emit-td" => opts.emit_td = Some(PathBuf::from(value("--emit-td")?)),
            "--bounds" => opts.bounds = true,
            "--trace-json" => opts.trace_json = Some(PathBuf::from(value("--trace-json")?)),
            "--fault" => opts.fault = Some(value("--fault")?),
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    if opts.mode == Mode::Atoms && opts.reduce == ReductionLevel::Off {
        return Err("the atoms subcommand expects --reduce components|full".to_string());
    }
    if opts.mode == Mode::Enumerate && opts.cache && opts.reduce == ReductionLevel::Off {
        return Err(
            "--cache / --cache-dir only apply to reduced sessions: add --reduce components|full"
                .to_string(),
        );
    }
    Ok(opts)
}

fn load_graph(path: &Path, format: Option<&str>) -> Result<Graph, CliError> {
    let from_stdin = path.as_os_str() == "-";
    let text = if from_stdin {
        std::io::read_to_string(std::io::stdin()).map_err(|e| EnumerationError::Io {
            path: "<stdin>".into(),
            message: e.to_string(),
        })?
    } else {
        std::fs::read_to_string(path).map_err(|e| EnumerationError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?
    };
    let format = format.map(str::to_string).unwrap_or_else(|| {
        match path.extension().and_then(|e| e.to_str()) {
            Some("gr") | Some("tw") => "pace".into(),
            Some("col") => "dimacs".into(),
            _ => "edges".into(),
        }
    });
    let graph = match format.as_str() {
        "pace" => io::parse_pace(&text).map_err(EnumerationError::from)?,
        "dimacs" => io::parse_dimacs(&text).map_err(EnumerationError::from)?,
        "edges" => io::parse_edge_list(&text).map_err(EnumerationError::from)?,
        other => {
            return Err(CliError::Usage(format!(
                "unknown format {other} (expected pace|dimacs|edges)"
            )))
        }
    };
    Ok(graph)
}

fn print_result(index: usize, g: &Graph, r: &RankedTriangulation) {
    println!(
        "#{index}: cost = {}, width = {}, fill-in = {}, bags = {}",
        r.cost,
        r.width(),
        r.fill_in(g),
        r.bags.len()
    );
}

fn emit_td(dir: &Path, index: usize, g: &Graph, r: &RankedTriangulation) -> Result<(), CliError> {
    std::fs::create_dir_all(dir).map_err(|e| EnumerationError::Io {
        path: dir.display().to_string(),
        message: e.to_string(),
    })?;
    let tree = clique_tree(&r.triangulation).expect("triangulations are chordal");
    let path = dir.join(format!("decomposition_{index:03}.td"));
    std::fs::write(&path, write_td(&tree, g.n())).map_err(|e| EnumerationError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })?;
    println!("   wrote {}", path.display());
    Ok(())
}

/// Resolves the atom store a cached session will use — the same instance
/// the reduction layer would pick for the equivalent `CachePolicy` — so
/// the CLI can report store-wide statistics after the run.
fn resolve_store(opts: &Options) -> Result<Option<Arc<AtomStore>>, EnumerationError> {
    if !opts.cache {
        return Ok(None);
    }
    match &opts.cache_dir {
        Some(dir) => AtomStore::persistent(dir, DEFAULT_BYTE_BUDGET)
            .map(Some)
            .map_err(|e| EnumerationError::Io {
                path: dir.display().to_string(),
                message: e.to_string(),
            }),
        None => Ok(Some(cache::global_store(DEFAULT_BYTE_BUDGET))),
    }
}

fn enumerate(
    g: &Graph,
    opts: &Options,
) -> Result<(EnumerationRun, Option<Arc<AtomStore>>), EnumerationError> {
    let mut session = Enumerate::on(g).cost_named(&opts.cost)?;
    if let Some(bound) = opts.width_bound {
        session = session.width_bound(bound);
    }
    session = session.threads(opts.threads).max_results(opts.top);
    if let Some(threshold) = opts.diverse {
        session = session.diverse(SimilarityMeasure::FillJaccard, threshold);
    }
    if let Some(secs) = opts.deadline {
        session = session.deadline(Duration::from_secs_f64(secs));
    }
    if let Some(nodes) = opts.node_budget {
        session = session.node_budget(nodes);
    }
    if opts.no_prune {
        session = session.pruning(PruningPolicy::Off);
    }
    session = session.symmetry(opts.symmetry);
    // `ReductionLevel::Off` transparently runs the direct engine, so the
    // session can always go through the reduction layer. A cached session
    // attaches the explicitly resolved store (rather than a CachePolicy)
    // so `run()` can surface the store's statistics afterwards.
    let store = resolve_store(opts)?;
    let mut reduced = session.reduce(opts.reduce);
    if let Some(store) = &store {
        reduced = reduced.store(Arc::clone(store));
    }
    reduced.run().map(|run| (run, store))
}

/// Enables full tracing and attaches a JSONL sink at `path` (the
/// `--trace-json` flag). The returned handle is flushed when the command
/// finishes — the global sink registry keeps its own reference alive.
fn setup_trace(path: &Path) -> Result<Arc<obs::JsonlSink>, CliError> {
    let sink = obs::JsonlSink::create(path).map_err(|e| {
        CliError::Enumeration(EnumerationError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })
    })?;
    obs::install_sink(sink.clone());
    obs::raise_level(obs::Level::Trace);
    Ok(sink)
}

/// Renders store-wide statistics as a JSON object (the `"store"` key of
/// `--stats-json` output).
fn store_stats_json(stats: StoreStats) -> String {
    format!(
        "{{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \"disk_errors\": {}}}",
        stats.hits, stats.misses, stats.evictions, stats.disk_errors
    )
}

/// Renders the run's statistics as a single JSON object (the `--stats-json`
/// output). Delegates to [`EnumerationStats::to_json`], the shared
/// serialization also emitted by the `mtr serve` daemon's stats frames;
/// a cached session additionally splices in the store-wide `"store"`
/// object.
fn stats_json(
    stats: &EnumerationStats,
    stop_reason: StopReason,
    store: Option<StoreStats>,
) -> String {
    let base = stats.to_json(stop_reason);
    match store {
        None => base,
        Some(s) => format!(
            "{}, \"store\": {}}}",
            base.strip_suffix('}').expect("stats render as an object"),
            store_stats_json(s)
        ),
    }
}

/// Renders a vertex set compactly, eliding long lists.
fn format_vertices(set: &ranked_triangulations::graph::VertexSet) -> String {
    const SHOWN: usize = 16;
    let vs = set.to_vec();
    let mut parts: Vec<String> = vs.iter().take(SHOWN).map(|v| v.to_string()).collect();
    if vs.len() > SHOWN {
        parts.push(format!("… +{}", vs.len() - SHOWN));
    }
    format!("{{{}}}", parts.join(" "))
}

fn run_atoms(g: &Graph, opts: &Options) -> Result<(), CliError> {
    let dec = decompose(g, opts.reduce);
    println!(
        "decomposition at level {}: {} atoms (largest {}), {} clique separators, {} simplicial vertices eliminated",
        dec.level,
        dec.atoms.len(),
        dec.largest_atom(),
        dec.clique_separators.len(),
        dec.simplicial.len()
    );
    // Canonical keys make the dedup potential visible: atoms sharing a key
    // are isomorphic, so the cache would run one stream for the group.
    let keys: Vec<ranked_triangulations::graph::CanonicalKey> = dec
        .atoms
        .iter()
        .map(|atom| atom.graph.canonical_form().key)
        .collect();
    let mut groups: HashMap<ranked_triangulations::graph::CanonicalKey, Vec<usize>> =
        HashMap::new();
    for (i, &key) in keys.iter().enumerate() {
        groups.entry(key).or_default().push(i);
    }
    for (i, atom) in dec.atoms.iter().enumerate() {
        // The discovered automorphism group of the atom itself: its order
        // bounds the per-atom subproblem sharing, and the orbit count shows
        // how interchangeable the atom's vertices are (n orbits = rigid).
        let aut = atom.graph.automorphisms();
        println!(
            "atom #{i}: {} vertices, {} edges, {} canonical {} aut |G|={} orbits={} {}",
            atom.graph.n(),
            atom.graph.m(),
            if atom.chordal {
                "chordal (trivial)"
            } else {
                "non-chordal"
            },
            keys[i],
            aut.order(),
            aut.orbit_count(),
            format_vertices(&atom.vertices)
        );
    }
    let mut grouped: Vec<(&ranked_triangulations::graph::CanonicalKey, &Vec<usize>)> =
        groups.iter().collect();
    grouped.sort_by_key(|(_, members)| members[0]);
    println!(
        "isomorphism classes: {} ({} atoms deduplicated by the cache)",
        grouped.len(),
        dec.atoms.len() - grouped.len()
    );
    for (key, members) in grouped {
        if members.len() > 1 {
            let list: Vec<String> = members.iter().map(|i| format!("#{i}")).collect();
            println!(
                "  class {}: {} isomorphic atoms ({})",
                key,
                members.len(),
                list.join(" ")
            );
        }
    }
    for sep in &dec.clique_separators {
        println!("clique separator: {}", format_vertices(sep));
    }
    // Store-wide health of the process-global atom store: in a fresh CLI
    // process this is all zeros, but embedders inspecting decompositions
    // mid-run (and the tests) see the live figures.
    let s = cache::global_store(DEFAULT_BYTE_BUDGET).store_stats();
    println!(
        "atom store (process-wide): {} hits, {} misses, {} evictions, {} disk errors",
        s.hits, s.misses, s.evictions, s.disk_errors
    );
    Ok(())
}

fn run(opts: Options) -> Result<(), CliError> {
    if let Some(spec) = &opts.fault {
        fault::apply_spec(spec).map_err(|e| CliError::Usage(format!("bad --fault spec: {e}")))?;
    }
    let trace_sink = match &opts.trace_json {
        Some(path) => Some(setup_trace(path)?),
        None => None,
    };
    let outcome = run_inner(&opts);
    if let Some(sink) = trace_sink {
        sink.flush();
    }
    outcome
}

fn run_inner(opts: &Options) -> Result<(), CliError> {
    let g = load_graph(&opts.input, opts.format.as_deref())?;
    println!(
        "graph: {} vertices, {} edges ({} components)",
        g.n(),
        g.m(),
        g.components().len()
    );

    if opts.mode == Mode::Atoms {
        return run_atoms(&g, opts);
    }

    if opts.bounds {
        let ub = chordal::treewidth_upper_bound(&g);
        let lb = chordal::mmd_plus_lower_bound(&g);
        println!(
            "treewidth bounds: {} ≤ tw(G) ≤ {} (MMD+ / greedy elimination)",
            lb, ub.width
        );
    }

    let (run, store) = enumerate(&g, opts)?;
    let stats = &run.stats;
    println!(
        "initialization: {} minimal separators, {} PMCs, {} full blocks ({:.2}s)",
        stats.minimal_separators,
        stats.pmcs,
        stats.full_blocks,
        stats.preprocessing.as_secs_f64()
    );
    if opts.reduce != ReductionLevel::Off {
        // See `EnumerationStats::atoms`: ≥2 = factorized engine, 1 = the
        // decomposition found nothing to split, 0 = reduction inapplicable.
        match stats.atoms {
            0 => println!(
                "reduction ({}): inapplicable for cost {:?}; ran the direct engine",
                opts.reduce, opts.cost
            ),
            1 => println!(
                "reduction ({}): graph is a single atom; ran the direct engine",
                opts.reduce
            ),
            n => println!("reduction ({}): factorized over {n} atoms", opts.reduce),
        }
    }
    if opts.cache {
        println!(
            "atom cache: {} hits, {} misses, {} atoms deduped, {} bytes resident{}",
            stats.atom_cache_hits,
            stats.atom_cache_misses,
            stats.atoms_deduped,
            stats.cache_bytes,
            match &opts.cache_dir {
                Some(dir) => format!(" (persisted in {})", dir.display()),
                None => String::new(),
            }
        );
    }
    if let Some(store) = &store {
        let s = store.store_stats();
        println!(
            "atom store (store-wide): {} hits, {} misses, {} evictions, {} disk errors",
            s.hits, s.misses, s.evictions, s.disk_errors
        );
    }
    if opts.stats_json {
        println!(
            "{}",
            stats_json(
                stats,
                run.stop_reason,
                store.as_ref().map(|s| s.store_stats())
            )
        );
    }
    if !stats.preprocessing_complete {
        println!("deadline expired during initialization — no results");
        return Ok(());
    }
    if run.results.is_empty() {
        match run.stop_reason {
            StopReason::Exhausted => {
                println!("no minimal triangulation satisfies the given restrictions")
            }
            reason => println!("budget exhausted before the first result (stop: {reason})"),
        }
        return Ok(());
    }
    println!(
        "top {} minimal triangulations by {} ({:.2}s total, stop: {}):",
        run.results.len(),
        stats.cost,
        stats.total.as_secs_f64(),
        run.stop_reason
    );
    for (i, r) in run.results.iter().enumerate() {
        print_result(i, &g, r);
        if let Some(dir) = &opts.emit_td {
            emit_td(dir, i, &g, r)?;
        }
    }
    if let Some(delay) = stats.average_delay() {
        println!(
            "session: avg delay {:.2} ms/result, {} nodes explored, peak queue depth {}",
            delay.as_secs_f64() * 1000.0,
            stats.nodes_explored,
            stats.max_queue_depth
        );
    }
    if opts.no_prune {
        println!("pruning: disabled (--no-prune)");
    } else {
        println!(
            "pruning: {} nodes pruned, incumbent {}",
            stats.nodes_pruned,
            stats
                .incumbent_cost
                .map_or_else(|| "none".into(), |c| format!("{c}"))
        );
    }
    if stats.symmetry_group_order > 1 || stats.orbits_merged > 0 || stats.subproblems_replayed > 0 {
        println!(
            "symmetry: discovered group order {}, {} subproblems replayed, {} orbits merged{}",
            stats.symmetry_group_order,
            stats.subproblems_replayed,
            stats.orbits_merged,
            if opts.symmetry == SymmetryPolicy::ModuloSymmetry {
                " (one representative per orbit)"
            } else {
                ""
            }
        );
    }
    if stats.effective_threads > 1 {
        println!(
            "threads: {} workers, {:?} tasks/worker, {} steals",
            stats.effective_threads, stats.worker_tasks, stats.steals
        );
    }
    Ok(())
}

/// Options of the `serve` subcommand.
struct ServeOptions {
    addr: Option<String>,
    unix: Option<PathBuf>,
    workers: usize,
    byte_budget: usize,
    cache_dir: Option<PathBuf>,
    max_sessions: usize,
    max_results_cap: Option<usize>,
    deadline_cap: Option<f64>,
    node_budget_cap: Option<u64>,
    max_vertices: Option<u32>,
    max_edges: Option<usize>,
    allow_remote_shutdown: bool,
    slow_ms: Option<u64>,
    max_session_ms: Option<u64>,
    trace_json: Option<PathBuf>,
    fault: Option<String>,
}

fn parse_serve_args(args: &[String]) -> Result<ServeOptions, String> {
    let mut opts = ServeOptions {
        addr: None,
        unix: None,
        workers: 0,
        byte_budget: 0,
        cache_dir: None,
        max_sessions: 4,
        max_results_cap: None,
        deadline_cap: None,
        node_budget_cap: None,
        max_vertices: serve::TenantQuota::default().max_vertices,
        max_edges: serve::TenantQuota::default().max_edges,
        allow_remote_shutdown: true,
        slow_ms: None,
        max_session_ms: None,
        trace_json: None,
        fault: None,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        let int = |name: &str, text: String| -> Result<u64, String> {
            text.parse()
                .map_err(|_| format!("{name} expects a non-negative integer"))
        };
        match flag.as_str() {
            "--addr" => opts.addr = Some(value("--addr")?),
            "--unix" => opts.unix = Some(PathBuf::from(value("--unix")?)),
            "--workers" => opts.workers = int("--workers", value("--workers")?)? as usize,
            "--byte-budget" => {
                opts.byte_budget = int("--byte-budget", value("--byte-budget")?)? as usize
            }
            "--cache-dir" => opts.cache_dir = Some(PathBuf::from(value("--cache-dir")?)),
            "--max-sessions" => {
                opts.max_sessions = int("--max-sessions", value("--max-sessions")?)? as usize
            }
            "--max-results-cap" => {
                opts.max_results_cap =
                    Some(int("--max-results-cap", value("--max-results-cap")?)? as usize)
            }
            "--deadline-cap" => {
                let secs: f64 = value("--deadline-cap")?
                    .parse()
                    .map_err(|_| "--deadline-cap expects a number of seconds".to_string())?;
                opts.deadline_cap = Some(secs);
            }
            "--node-budget-cap" => {
                opts.node_budget_cap = Some(int("--node-budget-cap", value("--node-budget-cap")?)?)
            }
            "--max-vertices" => {
                opts.max_vertices = Some(
                    u32::try_from(int("--max-vertices", value("--max-vertices")?)?)
                        .map_err(|_| "--max-vertices out of range".to_string())?,
                )
            }
            "--max-edges" => {
                opts.max_edges = Some(int("--max-edges", value("--max-edges")?)? as usize)
            }
            "--no-remote-shutdown" => opts.allow_remote_shutdown = false,
            "--slow-ms" => opts.slow_ms = Some(int("--slow-ms", value("--slow-ms")?)?),
            "--max-session-ms" => {
                opts.max_session_ms = Some(int("--max-session-ms", value("--max-session-ms")?)?)
            }
            "--trace-json" => opts.trace_json = Some(PathBuf::from(value("--trace-json")?)),
            "--fault" => opts.fault = Some(value("--fault")?),
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    if opts.addr.is_some() && opts.unix.is_some() {
        return Err("--addr and --unix are mutually exclusive".to_string());
    }
    Ok(opts)
}

fn run_serve(opts: ServeOptions) -> Result<(), CliError> {
    if let Some(spec) = &opts.fault {
        fault::apply_spec(spec).map_err(|e| CliError::Usage(format!("bad --fault spec: {e}")))?;
    }
    let trace_sink = match &opts.trace_json {
        Some(path) => Some(setup_trace(path)?),
        None => None,
    };
    let bind = match &opts.unix {
        Some(path) => serve::BindAddr::Unix(path.clone()),
        None => serve::BindAddr::Tcp(
            opts.addr
                .clone()
                .unwrap_or_else(|| "127.0.0.1:7171".to_string()),
        ),
    };
    let config = serve::ServerConfig {
        workers: opts.workers,
        byte_budget: opts.byte_budget,
        cache_dir: opts.cache_dir.clone(),
        store: None,
        quota: serve::TenantQuota {
            max_concurrent_sessions: opts.max_sessions,
            max_results_cap: opts.max_results_cap,
            deadline_cap: opts.deadline_cap.map(Duration::from_secs_f64),
            node_budget_cap: opts.node_budget_cap,
            max_vertices: opts.max_vertices,
            max_edges: opts.max_edges,
        },
        allow_remote_shutdown: opts.allow_remote_shutdown,
        slow_ms: opts.slow_ms,
        max_session_ms: opts.max_session_ms,
    };
    let handle = serve::serve(&bind, config)
        .map_err(|e| CliError::Usage(format!("failed to bind the daemon: {e}")))?;
    match (&opts.unix, handle.local_addr()) {
        (Some(path), _) => println!("mtr-serve listening on unix socket {}", path.display()),
        (None, Some(addr)) => println!("mtr-serve listening on {addr}"),
        (None, None) => println!("mtr-serve listening"),
    }
    println!("serving until a client sends a shutdown frame");
    handle.wait();
    if let Some(sink) = trace_sink {
        sink.flush();
    }
    println!("mtr-serve drained all sessions and exited");
    Ok(())
}

/// Options of the `client` subcommand.
struct ClientOptions {
    input: PathBuf,
    format: Option<String>,
    addr: Option<String>,
    unix: Option<PathBuf>,
    cost: String,
    top: Option<usize>,
    width_bound: Option<usize>,
    deadline: Option<f64>,
    node_budget: Option<u64>,
    threads: usize,
    tenant: String,
    cache: bool,
    binary: bool,
    stats_json: bool,
    metrics: bool,
    shutdown: bool,
    retries: u32,
    backoff_ms: u64,
}

fn parse_client_args(args: &[String]) -> Result<ClientOptions, String> {
    let mut it = args.iter();
    let input = it.next().ok_or_else(|| usage().to_string())?;
    let mut opts = ClientOptions {
        input: PathBuf::from(input),
        format: None,
        addr: None,
        unix: None,
        cost: "width".into(),
        top: Some(5),
        width_bound: None,
        deadline: None,
        node_budget: None,
        threads: 1,
        tenant: "anonymous".into(),
        cache: false,
        binary: false,
        stats_json: false,
        metrics: false,
        shutdown: false,
        retries: 0,
        backoff_ms: 100,
    };
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--format" => opts.format = Some(value("--format")?),
            "--addr" => opts.addr = Some(value("--addr")?),
            "--unix" => opts.unix = Some(PathBuf::from(value("--unix")?)),
            "--cost" => opts.cost = value("--cost")?,
            "--top" => {
                opts.top = Some(
                    value("--top")?
                        .parse()
                        .map_err(|_| "--top expects a positive integer".to_string())?,
                )
            }
            "--width-bound" => {
                opts.width_bound = Some(
                    value("--width-bound")?
                        .parse()
                        .map_err(|_| "--width-bound expects an integer".to_string())?,
                )
            }
            "--deadline" => {
                let secs: f64 = value("--deadline")?
                    .parse()
                    .map_err(|_| "--deadline expects a number of seconds".to_string())?;
                opts.deadline = Some(secs);
            }
            "--node-budget" => {
                opts.node_budget = Some(
                    value("--node-budget")?
                        .parse()
                        .map_err(|_| "--node-budget expects a positive integer".to_string())?,
                )
            }
            "--threads" => {
                opts.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "--threads expects an integer (0 = auto-detect)".to_string())?
            }
            "--tenant" => opts.tenant = value("--tenant")?,
            "--cache" => opts.cache = true,
            "--binary" => opts.binary = true,
            "--stats-json" => opts.stats_json = true,
            "--metrics" => opts.metrics = true,
            "--shutdown" => opts.shutdown = true,
            "--retries" => {
                opts.retries = value("--retries")?
                    .parse()
                    .map_err(|_| "--retries expects a non-negative integer".to_string())?
            }
            "--backoff-ms" => {
                opts.backoff_ms = value("--backoff-ms")?
                    .parse()
                    .map_err(|_| "--backoff-ms expects a non-negative integer".to_string())?
            }
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    if opts.addr.is_some() && opts.unix.is_some() {
        return Err("--addr and --unix are mutually exclusive".to_string());
    }
    Ok(opts)
}

fn run_client(opts: ClientOptions) -> Result<(), CliError> {
    let connect = || match &opts.unix {
        Some(path) => serve::Client::connect_unix(path),
        None => serve::Client::connect_tcp(opts.addr.as_deref().unwrap_or("127.0.0.1:7171")),
    };
    let mut client = connect().map_err(|e| CliError::Usage(format!("failed to connect: {e}")))?;

    // Bare `--metrics` / `--shutdown` (the graph path is "-" by
    // convention): skip the enumeration entirely — query and/or drain.
    if (opts.shutdown || opts.metrics) && opts.input.as_os_str() == "-" {
        if opts.metrics {
            let doc = client
                .metrics()
                .map_err(|e| CliError::Usage(format!("metrics query failed: {e}")))?;
            println!("{}", doc.render());
        }
        if opts.shutdown {
            client
                .shutdown_server()
                .map_err(|e| CliError::Usage(format!("shutdown failed: {e}")))?;
            println!("daemon acknowledged shutdown");
        }
        return Ok(());
    }

    let g = load_graph(&opts.input, opts.format.as_deref())?;
    let req = serve::EnumerateRequest {
        tenant: opts.tenant.clone(),
        n: g.n(),
        edges: g.edges().collect(),
        cost: opts.cost.clone(),
        width_bound: opts.width_bound,
        max_results: opts.top,
        deadline_ms: opts.deadline.map(|s| (s * 1000.0) as u64),
        node_budget: opts.node_budget,
        threads: opts.threads,
        cache: opts.cache,
        binary: opts.binary,
    };
    let print_result = |r: &serve::ServedResult| {
        println!(
            "#{}: cost = {}, fill-in = {} edges",
            r.rank,
            r.cost,
            r.fill.len()
        );
    };
    let done = if opts.retries > 0 {
        // Resilient mode: reconnect and reissue on transient failures
        // (connection refused/reset, daemon-side internal-error) — but
        // never after a partial stream. Results print after the stream
        // completes, since an aborted attempt discards its partial list.
        let policy = serve::RetryPolicy {
            retries: opts.retries,
            backoff_ms: opts.backoff_ms,
            ..serve::RetryPolicy::default()
        };
        let (results, done) = serve::enumerate_with_retry(&connect, &req, &policy)
            .map_err(|e| CliError::Usage(format!("request failed: {e}")))?;
        for r in &results {
            print_result(r);
        }
        done
    } else {
        client
            .enumerate_streaming(&req, |r| print_result(&r))
            .map_err(|e| CliError::Usage(format!("request failed: {e}")))?
    };
    println!(
        "done: {} results, stop: {}, queue: {}",
        done.results, done.stop_reason, done.queue
    );
    if opts.stats_json {
        println!("{}", done.stats.render());
    }
    if opts.metrics {
        let doc = client
            .metrics()
            .map_err(|e| CliError::Usage(format!("metrics query failed: {e}")))?;
        println!("{}", doc.render());
    }
    if opts.shutdown {
        client
            .shutdown_server()
            .map_err(|e| CliError::Usage(format!("shutdown failed: {e}")))?;
        println!("daemon acknowledged shutdown");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }
    let outcome = match args[0].as_str() {
        "serve" => parse_serve_args(&args[1..])
            .map_err(CliError::Usage)
            .and_then(run_serve),
        "client" => parse_client_args(&args[1..])
            .map_err(CliError::Usage)
            .and_then(run_client),
        _ => parse_args(&args).map_err(CliError::Usage).and_then(run),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_args_reads_all_flags() {
        let opts = parse_args(&args(&[
            "graph.gr",
            "--cost",
            "fill",
            "--top",
            "7",
            "--threads",
            "2",
            "--deadline",
            "1.5",
            "--node-budget",
            "100",
            "--diverse",
            "0.4",
            "--reduce",
            "full",
            "--stats-json",
        ]))
        .unwrap();
        assert_eq!(opts.mode, Mode::Enumerate);
        assert_eq!(opts.cost, "fill");
        assert_eq!(opts.top, 7);
        assert_eq!(opts.threads, 2);
        assert_eq!(opts.deadline, Some(1.5));
        assert_eq!(opts.node_budget, Some(100));
        assert_eq!(opts.diverse, Some(0.4));
        assert_eq!(opts.reduce, ReductionLevel::Full);
        assert!(opts.stats_json);
    }

    #[test]
    fn parse_args_defaults_reduction_off() {
        let opts = parse_args(&args(&["graph.gr"])).unwrap();
        assert_eq!(opts.reduce, ReductionLevel::Off);
        assert!(!opts.stats_json);
        assert!(!opts.cache);
        assert!(opts.cache_dir.is_none());
    }

    #[test]
    fn parse_args_cache_flags() {
        let opts = parse_args(&args(&["g.gr", "--reduce", "full", "--cache"])).unwrap();
        assert!(opts.cache);
        assert!(opts.cache_dir.is_none());
        let with_dir = parse_args(&args(&[
            "g.gr",
            "--reduce",
            "full",
            "--cache-dir",
            "/tmp/atoms",
        ]))
        .unwrap();
        assert!(with_dir.cache, "--cache-dir implies --cache");
        assert_eq!(with_dir.cache_dir, Some(PathBuf::from("/tmp/atoms")));
        // Caching without reduction is a usage error, not a silent no-op.
        assert!(parse_args(&args(&["g.gr", "--cache"])).is_err());
        assert!(parse_args(&args(&["g.gr", "--cache-dir", "/tmp/x"])).is_err());
        // The atoms subcommand inspects the decomposition only.
        assert!(parse_args(&args(&["atoms", "g.gr", "--cache"])).is_err());
    }

    #[test]
    fn enumerate_with_cache_matches_and_reports_stats() {
        // Two isomorphic C4s sharing a cut vertex: one keyed group, one
        // atom deduplicated within the run.
        let g = Graph::from_edges(
            7,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0),
                (0, 4),
                (4, 5),
                (5, 6),
                (6, 0),
            ],
        );
        let (plain, no_store) = enumerate(
            &g,
            &parse_args(&args(&[
                "g", "--cost", "fill", "--top", "10", "--reduce", "full",
            ]))
            .unwrap(),
        )
        .unwrap();
        assert!(no_store.is_none(), "uncached runs attach no store");
        let opts = parse_args(&args(&[
            "g", "--cost", "fill", "--top", "10", "--reduce", "full", "--cache",
        ]))
        .unwrap();
        let (cached, store) = enumerate(&g, &opts).unwrap();
        let store = store.expect("--cache attaches the shared store");
        assert_eq!(cached.stats.atoms_deduped, 1);
        let plain_costs: Vec<_> = plain.results.iter().map(|r| r.cost).collect();
        let cached_costs: Vec<_> = cached.results.iter().map(|r| r.cost).collect();
        assert_eq!(plain_costs, cached_costs);
        let json = stats_json(&cached.stats, cached.stop_reason, Some(store.store_stats()));
        assert!(json.contains("\"atom_cache_hits\": "));
        assert!(json.contains("\"atoms_deduped\": 1"));
        assert!(json.contains("\"cache_bytes\": "));
        // The store-wide satellite object rides along in --stats-json.
        assert!(json.contains("\"store\": {\"hits\": "));
        assert!(json.contains("\"disk_errors\": 0"));
        assert!(json.ends_with("}}"));
    }

    #[test]
    fn parse_args_atoms_subcommand() {
        let opts = parse_args(&args(&["atoms", "graph.gr"])).unwrap();
        assert_eq!(opts.mode, Mode::Atoms);
        assert_eq!(opts.input, PathBuf::from("graph.gr"));
        assert_eq!(opts.reduce, ReductionLevel::Full, "atoms defaults to full");
        let components = parse_args(&args(&["atoms", "-", "--reduce", "components"])).unwrap();
        assert_eq!(components.reduce, ReductionLevel::Components);
        assert!(parse_args(&args(&["atoms"])).is_err());
        // Enumeration-only flags and `--reduce off` are rejected for atoms.
        assert!(parse_args(&args(&["atoms", "g.gr", "--top", "3"])).is_err());
        assert!(parse_args(&args(&["atoms", "g.gr", "--stats-json"])).is_err());
        assert!(parse_args(&args(&["atoms", "g.gr", "--reduce", "off"])).is_err());
    }

    #[test]
    fn parse_args_observability_flags() {
        let opts = parse_args(&args(&["g.gr", "--trace-json", "/tmp/trace.jsonl"])).unwrap();
        assert_eq!(opts.trace_json, Some(PathBuf::from("/tmp/trace.jsonl")));
        assert!(parse_args(&args(&["g.gr", "--trace-json"])).is_err());
        let serve =
            parse_serve_args(&args(&["--slow-ms", "250", "--trace-json", "/tmp/t.jsonl"])).unwrap();
        assert_eq!(serve.slow_ms, Some(250));
        assert_eq!(serve.trace_json, Some(PathBuf::from("/tmp/t.jsonl")));
        assert!(parse_serve_args(&args(&["--slow-ms", "soon"])).is_err());
        let client = parse_client_args(&args(&["-", "--metrics"])).unwrap();
        assert!(client.metrics);
        assert!(usage().contains("--trace-json"));
        assert!(usage().contains("--slow-ms"));
        assert!(usage().contains("--metrics"));
    }

    #[test]
    fn parse_args_fault_and_resilience_flags() {
        // --fault is stored verbatim at parse time on both subcommands…
        let opts = parse_args(&args(&["g.gr", "--fault", "pool.task=error%50"])).unwrap();
        assert_eq!(opts.fault.as_deref(), Some("pool.task=error%50"));
        assert!(parse_args(&args(&["g.gr", "--fault"])).is_err());
        let serve = parse_serve_args(&args(&[
            "--max-session-ms",
            "60000",
            "--fault",
            "serve.session.run=panic",
        ]))
        .unwrap();
        assert_eq!(serve.max_session_ms, Some(60000));
        assert_eq!(serve.fault.as_deref(), Some("serve.session.run=panic"));
        assert!(parse_serve_args(&args(&["--max-session-ms", "soon"])).is_err());
        // …and a bad spec is a usage error at startup, before any graph
        // is loaded (apply_spec rejects without arming anything).
        let bad = parse_args(&args(&["/no/such/graph.gr", "--fault", "bogus"])).unwrap();
        match run(bad) {
            Err(CliError::Usage(msg)) => assert!(msg.contains("bad --fault spec"), "{msg}"),
            Err(other) => panic!("bad spec should be a usage error, got: {other}"),
            Ok(()) => panic!("bad spec should fail"),
        }
        let client =
            parse_client_args(&args(&["-", "--retries", "3", "--backoff-ms", "50"])).unwrap();
        assert_eq!(client.retries, 3);
        assert_eq!(client.backoff_ms, 50);
        assert!(parse_client_args(&args(&["-", "--retries", "-1"])).is_err());
        for flag in ["--fault", "--max-session-ms", "--retries", "--backoff-ms"] {
            assert!(usage().contains(flag), "usage() should mention {flag}");
        }
    }

    #[test]
    fn trace_json_writes_span_lines() {
        let dir = std::env::temp_dir();
        let graph_path = dir.join("mtr_cli_trace_graph.gr");
        std::fs::write(&graph_path, "p tw 4 4\n1 2\n2 3\n3 4\n4 1\n").unwrap();
        let trace_path = dir.join("mtr_cli_trace_out.jsonl");
        let opts = parse_args(&args(&[
            graph_path.to_str().unwrap(),
            "--cost",
            "fill",
            "--top",
            "2",
            "--trace-json",
            trace_path.to_str().unwrap(),
        ]))
        .unwrap();
        if let Err(e) = run(opts) {
            panic!("traced run failed: {e}");
        }
        let text = std::fs::read_to_string(&trace_path).unwrap();
        assert!(
            text.lines()
                .any(|l| l.contains("\"name\":\"session.preprocess\"")),
            "trace file should carry the preprocess span: {text}"
        );
        assert!(
            text.lines()
                .any(|l| l.contains("\"name\":\"session.emit\"")),
            "trace file should carry the emit span: {text}"
        );
        std::fs::remove_file(&graph_path).ok();
        std::fs::remove_file(&trace_path).ok();
    }

    #[test]
    fn parse_args_rejects_unknown_flags_and_bad_values() {
        assert!(parse_args(&args(&["g.gr", "--frobnicate"])).is_err());
        assert!(parse_args(&args(&["g.gr", "--top", "many"])).is_err());
        assert!(parse_args(&args(&["g.gr", "--deadline"])).is_err());
        assert!(parse_args(&args(&["g.gr", "--deadline", "-1"])).is_err());
        assert!(parse_args(&args(&["g.gr", "--deadline", "nan"])).is_err());
        assert!(parse_args(&args(&["g.gr", "--deadline", "inf"])).is_err());
        assert!(parse_args(&args(&["g.gr", "--reduce", "max"])).is_err());
    }

    #[test]
    fn load_graph_surfaces_line_numbered_parse_errors() {
        let dir = std::env::temp_dir();
        let path = dir.join("mtr_cli_test_bad_edge.gr");
        std::fs::write(&path, "p tw 3 2\n1 2\nnot an edge\n").unwrap();
        let err = load_graph(&path, Some("pace")).unwrap_err();
        let message = err.to_string();
        assert!(
            message.contains("line 3"),
            "message should carry the line number: {message}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_graph_reports_missing_files() {
        let err = load_graph(Path::new("/no/such/file.gr"), None).unwrap_err();
        assert!(err.to_string().contains("/no/such/file.gr"));
    }

    #[test]
    fn unknown_cost_is_a_typed_error() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let opts = parse_args(&args(&["g.gr", "--cost", "bogus"])).unwrap();
        let err = enumerate(&g, &opts).unwrap_err();
        assert_eq!(err, EnumerationError::UnknownCost("bogus".into()));
    }

    #[test]
    fn enumerate_applies_budgets() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let opts = parse_args(&args(&["g.gr", "--cost", "fill", "--top", "3"])).unwrap();
        let (run, _) = enumerate(&g, &opts).unwrap();
        assert_eq!(run.results.len(), 3);
        assert_eq!(run.stop_reason, StopReason::MaxResults);
    }

    #[test]
    fn enumerate_with_reduction_matches_direct() {
        // Two C4s sharing a cut vertex: 2 atoms, 4 minimal triangulations.
        let g = Graph::from_edges(
            7,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0),
                (0, 4),
                (4, 5),
                (5, 6),
                (6, 0),
            ],
        );
        let (direct, _) = enumerate(
            &g,
            &parse_args(&args(&["g", "--cost", "fill", "--top", "10"])).unwrap(),
        )
        .unwrap();
        let (reduced, _) = enumerate(
            &g,
            &parse_args(&args(&[
                "g", "--cost", "fill", "--top", "10", "--reduce", "full",
            ]))
            .unwrap(),
        )
        .unwrap();
        assert_eq!(reduced.stats.atoms, 2);
        let direct_costs: Vec<_> = direct.results.iter().map(|r| r.cost).collect();
        let reduced_costs: Vec<_> = reduced.results.iter().map(|r| r.cost).collect();
        assert_eq!(direct_costs, reduced_costs);
    }

    #[test]
    fn stats_json_is_well_formed() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let opts = parse_args(&args(&["g.gr", "--cost", "fill", "--top", "2"])).unwrap();
        let (run, _) = enumerate(&g, &opts).unwrap();
        let json = stats_json(&run.stats, run.stop_reason, None);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"cost\": \"fill-in\""));
        assert!(json.contains("\"results\": 2"));
        assert!(json.contains("\"stop_reason\": \"max-results\""));
        assert!(json.contains("\"atoms\": 0"));
        assert!(json.contains("\"effective_threads\": 1"));
        assert!(json.contains("\"worker_tasks\": []"));
        assert!(json.contains("\"steals\": 0"));
        assert!(json.contains("\"nodes_pruned\": "));
        assert!(json.contains("\"incumbent_cost\": "));
        assert!(json.contains("\"arena_bytes_reused\": "));
        assert!(json.contains("\"delays_ms\": ["));
        assert!(json.contains("\"symmetry\": {\"group_order\": "));
        assert!(json.contains("\"orbits_merged\": "));
        assert!(json.contains("\"subproblems_replayed\": "));
        // The top-level object plus the nested symmetry object: no stray
        // braces from the format.
        assert_eq!(json.matches('{').count(), 2);
        assert_eq!(json.matches('}').count(), 2);
    }

    #[test]
    fn no_prune_flag_disables_pruning_without_changing_results() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let (pruned, _) = enumerate(
            &g,
            &parse_args(&args(&["g", "--cost", "fill", "--top", "5"])).unwrap(),
        )
        .unwrap();
        let opts = parse_args(&args(&["g", "--cost", "fill", "--top", "5", "--no-prune"])).unwrap();
        assert!(opts.no_prune);
        let (plain, _) = enumerate(&g, &opts).unwrap();
        assert_eq!(plain.stats.nodes_pruned, 0);
        assert_eq!(plain.stats.incumbent_cost, None);
        let pruned_costs: Vec<_> = pruned.results.iter().map(|r| r.cost).collect();
        let plain_costs: Vec<_> = plain.results.iter().map(|r| r.cost).collect();
        assert_eq!(pruned_costs, plain_costs);
        let json = stats_json(&plain.stats, plain.stop_reason, None);
        assert!(json.contains("\"nodes_pruned\": 0"));
        assert!(json.contains("\"incumbent_cost\": null"));
    }

    #[test]
    fn symmetry_flags_parse_and_quotient_the_stream() {
        let defaults = parse_args(&args(&["g.gr"])).unwrap();
        assert_eq!(defaults.symmetry, SymmetryPolicy::Full);
        let off = parse_args(&args(&["g.gr", "--no-symmetry"])).unwrap();
        assert_eq!(off.symmetry, SymmetryPolicy::Off);
        let modulo = parse_args(&args(&["g.gr", "--modulo-symmetry"])).unwrap();
        assert_eq!(modulo.symmetry, SymmetryPolicy::ModuloSymmetry);
        // The atoms subcommand takes neither.
        assert!(parse_args(&args(&["atoms", "g.gr", "--modulo-symmetry"])).is_err());
        assert!(usage().contains("--modulo-symmetry"));

        // End to end on C6: 14 minimal triangulations, 3 up to rotation
        // and reflection — and the stats surface the quotient.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let full = parse_args(&args(&["g", "--cost", "fill", "--top", "20"])).unwrap();
        let (all, _) = enumerate(&g, &full).unwrap();
        assert_eq!(all.results.len(), 14);
        assert_eq!(all.stats.symmetry_group_order, 12);
        let opts = parse_args(&args(&[
            "g",
            "--cost",
            "fill",
            "--top",
            "20",
            "--modulo-symmetry",
        ]))
        .unwrap();
        let (quotient, _) = enumerate(&g, &opts).unwrap();
        assert_eq!(quotient.results.len(), 3);
        assert!(quotient.stats.orbits_merged > 0);
        let json = stats_json(&quotient.stats, quotient.stop_reason, None);
        assert!(json.contains("\"symmetry\": {\"group_order\": 12"));
    }

    #[test]
    fn threads_flag_accepts_zero_for_auto_detect() {
        let opts = parse_args(&args(&["g.gr", "--threads", "0"])).unwrap();
        assert_eq!(opts.threads, 0);
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let (run, _) = enumerate(&g, &opts).unwrap();
        let detected = std::thread::available_parallelism().map_or(1, |n| n.get());
        assert_eq!(run.stats.effective_threads, detected);
        assert!(usage().contains("auto-detect"));
    }

    #[test]
    fn threads_reach_the_reduced_engine_and_stats_json() {
        // Two C4s sharing a cut vertex: 2 atoms, so the factorized engine
        // runs — and must report the requested thread count.
        let g = Graph::from_edges(
            7,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0),
                (0, 4),
                (4, 5),
                (5, 6),
                (6, 0),
            ],
        );
        let opts = parse_args(&args(&[
            "g",
            "--cost",
            "fill",
            "--top",
            "10",
            "--threads",
            "2",
            "--reduce",
            "full",
            "--stats-json",
        ]))
        .unwrap();
        let (run, _) = enumerate(&g, &opts).unwrap();
        assert_eq!(run.stats.atoms, 2);
        assert_eq!(run.stats.effective_threads, 2);
        let json = stats_json(&run.stats, run.stop_reason, None);
        assert!(json.contains("\"effective_threads\": 2"));
        assert!(json.contains("\"worker_tasks\": ["));
    }
}
