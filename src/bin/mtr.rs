//! `mtr` — command-line ranked enumeration of minimal triangulations and
//! proper tree decompositions.
//!
//! ```text
//! mtr <graph-file> [--format pace|dimacs|edges] [--cost width|fill|width-fill|expbags]
//!                  [--top <k>] [--width-bound <b>] [--threads <t>]
//!                  [--diverse <threshold>] [--emit-td <directory>] [--bounds]
//! ```
//!
//! The graph format is guessed from the extension (`.gr` → PACE, `.col` →
//! DIMACS, anything else → edge list) unless `--format` is given. For each
//! of the top-k minimal triangulations the tool prints the cost, width and
//! fill-in, and optionally writes the corresponding clique tree as a PACE
//! `.td` file.

use ranked_triangulations::chordal::{self, clique_tree, write_td};
use ranked_triangulations::core::cost::{BagCost, ExpBagSum, FillIn, Width, WidthThenFill};
use ranked_triangulations::core::{
    Diversified, DiversityFilter, ParallelRankedEnumerator, Preprocessed, RankedEnumerator,
    RankedTriangulation, SimilarityMeasure,
};
use ranked_triangulations::graph::{io, Graph};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Options {
    input: PathBuf,
    format: Option<String>,
    cost: String,
    top: usize,
    width_bound: Option<usize>,
    threads: usize,
    diverse: Option<f64>,
    emit_td: Option<PathBuf>,
    bounds: bool,
}

fn usage() -> &'static str {
    "usage: mtr <graph-file> [--format pace|dimacs|edges] [--cost width|fill|width-fill|expbags]\n\
     \x20          [--top <k>] [--width-bound <b>] [--threads <t>] [--diverse <threshold>]\n\
     \x20          [--emit-td <directory>] [--bounds]"
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut it = args.iter();
    let input = PathBuf::from(it.next().ok_or_else(|| usage().to_string())?);
    let mut opts = Options {
        input,
        format: None,
        cost: "width".into(),
        top: 5,
        width_bound: None,
        threads: 1,
        diverse: None,
        emit_td: None,
        bounds: false,
    };
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--format" => opts.format = Some(value("--format")?),
            "--cost" => opts.cost = value("--cost")?,
            "--top" => {
                opts.top = value("--top")?
                    .parse()
                    .map_err(|_| "--top expects a positive integer".to_string())?
            }
            "--width-bound" => {
                opts.width_bound = Some(
                    value("--width-bound")?
                        .parse()
                        .map_err(|_| "--width-bound expects an integer".to_string())?,
                )
            }
            "--threads" => {
                opts.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "--threads expects a positive integer".to_string())?
            }
            "--diverse" => {
                opts.diverse = Some(
                    value("--diverse")?
                        .parse()
                        .map_err(|_| "--diverse expects a number in [0,1]".to_string())?,
                )
            }
            "--emit-td" => opts.emit_td = Some(PathBuf::from(value("--emit-td")?)),
            "--bounds" => opts.bounds = true,
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    Ok(opts)
}

fn load_graph(path: &Path, format: Option<&str>) -> Result<Graph, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let format = format.map(str::to_string).unwrap_or_else(|| {
        match path.extension().and_then(|e| e.to_str()) {
            Some("gr") | Some("tw") => "pace".into(),
            Some("col") => "dimacs".into(),
            _ => "edges".into(),
        }
    });
    let graph = match format.as_str() {
        "pace" => io::parse_pace(&text).map_err(|e| e.to_string())?,
        "dimacs" => io::parse_dimacs(&text).map_err(|e| e.to_string())?,
        "edges" => io::parse_edge_list(&text).map_err(|e| e.to_string())?,
        other => return Err(format!("unknown format {other}")),
    };
    Ok(graph)
}

fn cost_object(name: &str) -> Result<Box<dyn BagCost + Sync>, String> {
    match name {
        "width" => Ok(Box::new(Width)),
        "fill" => Ok(Box::new(FillIn)),
        "width-fill" => Ok(Box::new(WidthThenFill)),
        "expbags" => Ok(Box::new(ExpBagSum)),
        other => Err(format!(
            "unknown cost {other} (expected width|fill|width-fill|expbags)"
        )),
    }
}

fn print_result(index: usize, g: &Graph, r: &RankedTriangulation) {
    println!(
        "#{index}: cost = {}, width = {}, fill-in = {}, bags = {}",
        r.cost,
        r.width(),
        r.fill_in(g),
        r.bags.len()
    );
}

fn emit_td(dir: &Path, index: usize, g: &Graph, r: &RankedTriangulation) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let tree = clique_tree(&r.triangulation).expect("triangulations are chordal");
    let path = dir.join(format!("decomposition_{index:03}.td"));
    std::fs::write(&path, write_td(&tree, g.n()))
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    println!("   wrote {}", path.display());
    Ok(())
}

fn run(opts: Options) -> Result<(), String> {
    let g = load_graph(&opts.input, opts.format.as_deref())?;
    println!(
        "graph: {} vertices, {} edges ({} components)",
        g.n(),
        g.m(),
        g.components().len()
    );

    if opts.bounds {
        let ub = chordal::treewidth_upper_bound(&g);
        let lb = chordal::mmd_plus_lower_bound(&g);
        println!(
            "treewidth bounds: {} ≤ tw(G) ≤ {} (MMD+ / greedy elimination)",
            lb, ub.width
        );
    }

    let started = std::time::Instant::now();
    let pre = match opts.width_bound {
        Some(b) => Preprocessed::new_bounded(&g, b),
        None => Preprocessed::new(&g),
    };
    println!(
        "initialization: {} minimal separators, {} PMCs, {} full blocks ({:.2}s)",
        pre.minimal_separators().len(),
        pre.pmcs().len(),
        pre.full_blocks().len(),
        started.elapsed().as_secs_f64()
    );

    let cost = cost_object(&opts.cost)?;
    let results: Vec<RankedTriangulation> = {
        let base: Box<dyn Iterator<Item = RankedTriangulation>> = if opts.threads > 1 {
            Box::new(ParallelRankedEnumerator::new(
                &pre,
                cost.as_ref(),
                opts.threads,
            ))
        } else {
            Box::new(RankedEnumerator::new(&pre, cost.as_ref()))
        };
        let stream: Box<dyn Iterator<Item = RankedTriangulation>> = match opts.diverse {
            Some(threshold) => Box::new(Diversified::new(
                base,
                DiversityFilter::new(&g, SimilarityMeasure::FillJaccard, threshold),
            )),
            None => base,
        };
        stream.take(opts.top).collect()
    };

    if results.is_empty() {
        println!("no minimal triangulation satisfies the given restrictions");
        return Ok(());
    }
    println!(
        "top {} minimal triangulations by {} ({:.2}s total):",
        results.len(),
        cost.name(),
        started.elapsed().as_secs_f64()
    );
    for (i, r) in results.iter().enumerate() {
        print_result(i, &g, r);
        if let Some(dir) = &opts.emit_td {
            emit_td(dir, i, &g, r)?;
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }
    match parse_args(&args).and_then(run) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
