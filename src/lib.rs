//! # ranked-triangulations
//!
//! A from-scratch Rust implementation of **“Ranked Enumeration of Minimal
//! Triangulations”** (Ravid, Medini, Kimelfeld — PODS 2019): enumerate the
//! minimal triangulations of a graph — equivalently, its proper tree
//! decompositions — in increasing order of any *split-monotone bag cost*
//! (width, fill-in, weighted variants, hypertree-width-like costs, or your
//! own), with polynomial delay on poly-MS graph classes or under a constant
//! width bound.
//!
//! ## Crate map
//!
//! This facade re-exports the workspace crates:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`graph`] | `mtr-graph` | bitset vertex sets, graphs, hypergraphs, PACE/DIMACS I/O |
//! | [`chordal`] | `mtr-chordal` | chordality, maximal cliques, clique trees, tree decompositions, LB-Triang, MCS-M |
//! | [`separators`] | `mtr-separators` | minimal separators, crossing relation, blocks, realizations |
//! | [`pmc`] | `mtr-pmc` | potential maximal cliques (test + enumeration) |
//! | [`core`] | `mtr-core` | bag costs, `MinTriang`, `RankedTriang`, proper-decomposition enumeration, CKK baseline |
//! | [`obs`] | `mtr-obs` | zero-dependency metrics registry (counters, gauges, histograms) and span tracing |
//! | [`cache`] | `mtr-cache` | content-addressed atom cache: canonical-form keyed ranked prefixes, LRU + on-disk backend |
//! | [`reduce`] | `mtr-reduce` | safe reductions, clique-separator atom decomposition, factorized ranked enumeration |
//! | [`workloads`] | `mtr-workloads` | dataset generators and the experiment harness |
//!
//! ## Quick start
//!
//! The canonical entry point is the [`Enumerate`](prelude::Enumerate)
//! builder: pick a graph, a cost, optional budgets, and run.
//!
//! ```
//! use ranked_triangulations::prelude::*;
//!
//! // The running example of the paper (Figure 1): u, v joined through
//! // three parallel middle vertices, plus a pendant v'.
//! let g = ranked_triangulations::graph::paper_example_graph();
//!
//! // Enumerate the minimal triangulations by increasing fill-in.
//! let run = Enumerate::on(&g).cost(&FillIn).run()?;
//! assert_eq!(run.results.len(), 2);
//! assert_eq!(run.results[0].fill_in(&g), 1);   // the cheapest comes first
//! assert_eq!(run.results[1].fill_in(&g), 3);
//! assert_eq!(run.stop_reason, StopReason::Exhausted);
//!
//! // Or get proper tree decompositions directly, ranked by width.
//! let decs = Enumerate::on(&g)
//!     .cost(&Width)
//!     .proper_decompositions(Some(1))
//!     .max_results(3)
//!     .run_decompositions()?;
//! assert!(decs.results[0].decomposition.is_valid(&g));
//! # Ok::<(), EnumerationError>(())
//! ```
//!
//! Budgets make any session any-time safe: `.max_results(k)`,
//! `.deadline(duration)` and `.node_budget(n)` each truncate the ranked
//! stream to a prefix and report the typed
//! [`StopReason`](prelude::StopReason); per-run measurements (preprocessing
//! time, per-result delays, queue depth) come back in
//! [`EnumerationStats`](prelude::EnumerationStats).
//!
//! To amortize preprocessing across several enumerations on one graph,
//! build a [`Preprocessed`](prelude::Preprocessed) once and start sessions
//! with `Enumerate::with(&pre)`:
//!
//! ```
//! use ranked_triangulations::prelude::*;
//!
//! let g = ranked_triangulations::graph::paper_example_graph();
//! let pre = Preprocessed::new(&g);             // minimal separators + PMCs
//! let by_width = Enumerate::with(&pre).cost(&Width).run()?;
//! let by_fill = Enumerate::with(&pre).cost(&FillIn).run()?;
//! assert_eq!(by_width.results.len(), by_fill.results.len());
//! # Ok::<(), EnumerationError>(())
//! ```
//!
//! On decomposable inputs — graphs glued along cliques, models with
//! simplicial fringes, blobs joined by bridges — chain
//! `.reduce(ReductionLevel::Full)` to split the graph into the atoms of
//! its clique minimal-separator decomposition, enumerate each atom
//! independently, and merge the per-atom ranked streams into the same
//! globally ranked stream at a fraction of the preprocessing cost:
//!
//! ```
//! use ranked_triangulations::prelude::*;
//!
//! // Two 4-cycles sharing the cut vertex 0: two atoms.
//! let g = Graph::from_edges(
//!     7,
//!     &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 4), (4, 5), (5, 6), (6, 0)],
//! );
//! let run = Enumerate::on(&g)
//!     .cost(&FillIn)
//!     .reduce(ReductionLevel::Full)
//!     .run()?;
//! assert_eq!(run.stats.atoms, 2);
//! assert_eq!(run.results.len(), 4, "2 triangulations per C4, combined");
//! assert_eq!(run.results[0].fill_in(&g), 2);
//! # Ok::<(), EnumerationError>(())
//! ```
//!
//! The per-algorithm constructors (`RankedEnumerator::new`,
//! `ParallelRankedEnumerator::new`, `ProperDecompositionEnumerator::new`,
//! `Diversified::new`) are still exported as the engine layer the session
//! drives — existing code keeps working — but new code should go through
//! `Enumerate`.
//!
//! See the `examples/` directory for end-to-end scenarios (join-query
//! optimization, Bayesian inference, bounded-width sweeps) and the
//! `mtr-bench` crate for the binaries regenerating every table and figure
//! of the paper's evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mtr_cache as cache;
pub use mtr_chordal as chordal;
pub use mtr_core as core;
pub use mtr_fault as fault;
pub use mtr_graph as graph;
pub use mtr_obs as obs;
pub use mtr_pmc as pmc;
pub use mtr_reduce as reduce;
pub use mtr_separators as separators;
pub use mtr_serve as serve;
pub use mtr_workloads as workloads;

/// The most commonly used items, for glob import in applications.
pub mod prelude {
    pub use mtr_cache::{AtomStore, CacheStats};
    pub use mtr_chordal::{clique_tree, is_chordal, is_minimal_triangulation, TreeDecomposition};
    pub use mtr_core::cost::{
        named_cost, BagCost, Constrained, Constraints, CostValue, CoverWidth, DynBagCost,
        ExpBagSum, FillIn, LinearCombination, WeightedFillIn, WeightedWidth, Width, WidthThenFill,
    };
    pub use mtr_core::{
        all_triangulations_ranked, min_triangulation, resolve_threads, top_k_proper_decompositions,
        top_k_triangulations, CachePolicy, CancelFlag, CkkEnumerator, DecompositionRun,
        Diversified, DiversityFilter, Enumerate, EnumerationError, EnumerationRun,
        EnumerationStats, LbTriangSampler, ParallelRankedEnumerator, PoolStats, Preprocessed,
        ProperDecompositionEnumerator, PruningPolicy, RankedDecomposition, RankedEnumerator,
        RankedTriangulation, SessionReport, SimilarityMeasure, StopReason, Triangulation,
        WorkerPool,
    };
    pub use mtr_graph::{CanonicalForm, CanonicalKey, Graph, Hypergraph, Vertex, VertexSet};
    pub use mtr_reduce::{decompose, Decomposition, EnumerateReduceExt, Reduced, ReductionLevel};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_quickstart_compiles_and_runs() {
        let g = crate::graph::paper_example_graph();
        let run = Enumerate::on(&g)
            .cost(&Width)
            .max_results(1)
            .run()
            .expect("a width session on a plain graph cannot fail");
        assert_eq!(run.results.len(), 1);
        assert_eq!(run.results[0].width(), 2);
        assert_eq!(run.stop_reason, StopReason::MaxResults);
        // The engine-layer helpers still work (shim status).
        let top = top_k_triangulations(&g, &Width, 1);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].width(), 2);
    }
}
