//! # ranked-triangulations
//!
//! A from-scratch Rust implementation of **“Ranked Enumeration of Minimal
//! Triangulations”** (Ravid, Medini, Kimelfeld — PODS 2019): enumerate the
//! minimal triangulations of a graph — equivalently, its proper tree
//! decompositions — in increasing order of any *split-monotone bag cost*
//! (width, fill-in, weighted variants, hypertree-width-like costs, or your
//! own), with polynomial delay on poly-MS graph classes or under a constant
//! width bound.
//!
//! ## Crate map
//!
//! This facade re-exports the workspace crates:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`graph`] | `mtr-graph` | bitset vertex sets, graphs, hypergraphs, PACE/DIMACS I/O |
//! | [`chordal`] | `mtr-chordal` | chordality, maximal cliques, clique trees, tree decompositions, LB-Triang, MCS-M |
//! | [`separators`] | `mtr-separators` | minimal separators, crossing relation, blocks, realizations |
//! | [`pmc`] | `mtr-pmc` | potential maximal cliques (test + enumeration) |
//! | [`core`] | `mtr-core` | bag costs, `MinTriang`, `RankedTriang`, proper-decomposition enumeration, CKK baseline |
//! | [`workloads`] | `mtr-workloads` | dataset generators and the experiment harness |
//!
//! ## Quick start
//!
//! ```
//! use ranked_triangulations::prelude::*;
//!
//! // The running example of the paper (Figure 1): u, v joined through
//! // three parallel middle vertices, plus a pendant v'.
//! let g = ranked_triangulations::graph::paper_example_graph();
//!
//! // One-time initialization: minimal separators, potential maximal
//! // cliques, and the block structure of the Bouchitté–Todinca DP.
//! let pre = Preprocessed::new(&g);
//!
//! // Enumerate the minimal triangulations by increasing fill-in.
//! let results: Vec<_> = RankedEnumerator::new(&pre, &FillIn).collect();
//! assert_eq!(results.len(), 2);
//! assert_eq!(results[0].fill_in(&g), 1);   // the cheapest comes first
//! assert_eq!(results[1].fill_in(&g), 3);
//!
//! // Or get proper tree decompositions directly, ranked by width.
//! let decompositions = top_k_proper_decompositions(&g, &Width, 3);
//! assert!(decompositions[0].decomposition.is_valid(&g));
//! ```
//!
//! See the `examples/` directory for end-to-end scenarios (join-query
//! optimization, Bayesian inference, bounded-width sweeps) and the
//! `mtr-bench` crate for the binaries regenerating every table and figure
//! of the paper's evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mtr_chordal as chordal;
pub use mtr_core as core;
pub use mtr_graph as graph;
pub use mtr_pmc as pmc;
pub use mtr_separators as separators;
pub use mtr_workloads as workloads;

/// The most commonly used items, for glob import in applications.
pub mod prelude {
    pub use mtr_chordal::{clique_tree, is_chordal, is_minimal_triangulation, TreeDecomposition};
    pub use mtr_core::cost::{
        BagCost, Constrained, Constraints, CostValue, CoverWidth, ExpBagSum, FillIn,
        LinearCombination, WeightedFillIn, WeightedWidth, Width, WidthThenFill,
    };
    pub use mtr_core::{
        all_triangulations_ranked, min_triangulation, top_k_proper_decompositions,
        top_k_triangulations, CkkEnumerator, Diversified, DiversityFilter, LbTriangSampler,
        ParallelRankedEnumerator, Preprocessed, ProperDecompositionEnumerator, RankedDecomposition,
        RankedEnumerator, RankedTriangulation, SimilarityMeasure, Triangulation,
    };
    pub use mtr_graph::{Graph, Hypergraph, Vertex, VertexSet};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_quickstart_compiles_and_runs() {
        let g = crate::graph::paper_example_graph();
        let top = top_k_triangulations(&g, &Width, 1);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].width(), 2);
    }
}
